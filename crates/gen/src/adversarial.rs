//! Adversarial graph corpus for torture-testing schedulers.
//!
//! Random-generator surveys (Canon et al.) show generators routinely
//! emit degenerate and extreme instances; this module makes those
//! extremes *first-class test inputs*. Every case is deterministic
//! (no RNG), so the torture suite and the robustness harness see the
//! same graphs on every run.
//!
//! The corpus covers the failure modes schedulers historically trip
//! on: empty and single-node graphs, zero-weight nodes and edges
//! (division-by-zero bait for granularity math), star fan-in/fan-out
//! (pathological ready-list sizes), deep chains (recursion /
//! level-computation depth), dense near-complete DAGs (quadratic edge
//! machinery), and extreme granularity in both directions (overflow
//! bait for `finish + comm` arithmetic).

use crate::families;
use dagsched_dag::{Dag, DagBuilder, Weight};

/// One named adversarial input.
#[derive(Debug, Clone)]
pub struct TortureCase {
    /// Stable case name (used in test diagnostics and reports).
    pub name: &'static str,
    /// The graph itself.
    pub graph: Dag,
}

fn case(name: &'static str, graph: Dag) -> TortureCase {
    TortureCase { name, graph }
}

/// A large-but-safe weight: big enough to expose naive `f64` or
/// saturating arithmetic, small enough that summing a whole
/// schedule's worth stays far below `u64::MAX`.
pub const HUGE_WEIGHT: Weight = 1 << 40;

/// The full corpus, in a fixed order.
///
/// Sizes are chosen so the whole corpus × every registered heuristic
/// finishes in seconds even in debug builds, while still being far
/// outside the comfortable regime of the paper's 50–350-node graphs.
pub fn torture_corpus() -> Vec<TortureCase> {
    vec![
        case("empty", DagBuilder::new().build().unwrap()),
        case("single-node", families::independent(1, 7)),
        case("single-zero-node", families::independent(1, 0)),
        case("two-independent", families::independent(2, 5)),
        case("zero-weight-chain", families::chain(32, 0, 0)),
        case("zero-comm-chain", families::chain(64, 9, 0)),
        case("heavy-comm-chain", families::chain(64, 1, 1_000_000)),
        case("deep-chain", families::chain(1024, 3, 2)),
        case("star-out", star_out(128)),
        case("star-in", star_in(128)),
        case("zero-mid-fork-join", zero_mid_fork_join(48)),
        case("antichain", families::independent(256, 11)),
        case("dense-complete", dense_complete(24)),
        case("layered-bipartite", layered_bipartite(4, 16)),
        case("very-coarse", families::fork_join(8, HUGE_WEIGHT, 1)),
        case("very-fine", families::fork_join(8, 1, HUGE_WEIGHT)),
        case("alternating-extremes", alternating_extremes(40)),
    ]
}

/// One source fanning out to `leaves` sinks.
fn star_out(leaves: usize) -> Dag {
    let mut b = DagBuilder::with_capacity(leaves + 1, leaves);
    let hub = b.add_node(2);
    for i in 0..leaves {
        let leaf = b.add_node(1 + (i as Weight % 3));
        b.add_edge(hub, leaf, 1 + (i as Weight % 5)).unwrap();
    }
    b.build().unwrap()
}

/// `leaves` sources fanning in to one sink.
fn star_in(leaves: usize) -> Dag {
    let mut b = DagBuilder::with_capacity(leaves + 1, leaves);
    let mut srcs = Vec::with_capacity(leaves);
    for i in 0..leaves {
        srcs.push(b.add_node(1 + (i as Weight % 3)));
    }
    let hub = b.add_node(2);
    for (i, &s) in srcs.iter().enumerate() {
        b.add_edge(s, hub, 1 + (i as Weight % 5)).unwrap();
    }
    b.build().unwrap()
}

/// Fork-join whose middle layer is entirely zero-weight tasks joined
/// by zero-weight edges — every middle task is "free" and
/// simultaneously schedulable anywhere.
fn zero_mid_fork_join(width: usize) -> Dag {
    let mut b = DagBuilder::with_capacity(width + 2, 2 * width);
    let src = b.add_node(5);
    let snk_w = 5;
    let mids: Vec<_> = (0..width).map(|_| b.add_node(0)).collect();
    let snk = b.add_node(snk_w);
    for &m in &mids {
        b.add_edge(src, m, 0).unwrap();
        b.add_edge(m, snk, 0).unwrap();
    }
    b.build().unwrap()
}

/// The complete DAG on `n` nodes: an edge `i → j` for every `i < j`.
/// Maximally dense — `n(n−1)/2` edges, out-degrees from `n−1` down
/// to 0.
fn dense_complete(n: usize) -> Dag {
    let mut b = DagBuilder::with_capacity(n, n * (n - 1) / 2);
    let ids: Vec<_> = (0..n).map(|i| b.add_node(1 + (i as Weight % 4))).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(ids[i], ids[j], 1 + ((i + j) as Weight % 7))
                .unwrap();
        }
    }
    b.build().unwrap()
}

/// `layers` layers of `width` nodes with complete bipartite edges
/// between consecutive layers — wide *and* join-heavy.
fn layered_bipartite(layers: usize, width: usize) -> Dag {
    let mut b = DagBuilder::with_capacity(layers * width, (layers - 1) * width * width);
    let ids: Vec<Vec<_>> = (0..layers)
        .map(|l| {
            (0..width)
                .map(|i| b.add_node(1 + ((l + i) as Weight % 5)))
                .collect()
        })
        .collect();
    for l in 0..layers - 1 {
        for &u in &ids[l] {
            for &v in &ids[l + 1] {
                b.add_edge(u, v, 1).unwrap();
            }
        }
    }
    b.build().unwrap()
}

/// A chain alternating zero-weight and huge-weight tasks with
/// alternating zero/huge communication — both granularity extremes in
/// one graph.
fn alternating_extremes(n: usize) -> Dag {
    let mut b = DagBuilder::with_capacity(n, n - 1);
    let ids: Vec<_> = (0..n)
        .map(|i| b.add_node(if i % 2 == 0 { 0 } else { HUGE_WEIGHT }))
        .collect();
    for (i, w) in ids.windows(2).enumerate() {
        b.add_edge(w[0], w[1], if i % 2 == 0 { HUGE_WEIGHT } else { 0 })
            .unwrap();
    }
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_named_uniquely() {
        let a = torture_corpus();
        let b = torture_corpus();
        assert_eq!(a.len(), b.len());
        let mut names: Vec<_> = a.iter().map(|c| c.name).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.graph, y.graph);
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), a.len(), "duplicate case names");
    }

    #[test]
    fn corpus_covers_the_advertised_extremes() {
        let corpus = torture_corpus();
        let get = |n: &str| &corpus.iter().find(|c| c.name == n).unwrap().graph;
        assert_eq!(get("empty").num_nodes(), 0);
        assert_eq!(get("single-node").num_nodes(), 1);
        assert!(get("zero-weight-chain").serial_time() == 0);
        assert_eq!(get("deep-chain").num_nodes(), 1024);
        assert_eq!(get("star-out").num_edges(), 128);
        assert_eq!(get("star-in").num_edges(), 128);
        let dense = get("dense-complete");
        assert_eq!(
            dense.num_edges(),
            dense.num_nodes() * (dense.num_nodes() - 1) / 2
        );
        assert!(get("very-coarse").serial_time() >= HUGE_WEIGHT);
    }

    #[test]
    fn weights_stay_far_from_overflow() {
        // Serial time plus worst-case accumulated comm must leave
        // plenty of headroom in u64 for `finish + comm` chains.
        for c in torture_corpus() {
            let comm: Weight = c.graph.edges().iter().map(|e| e.weight).sum();
            let total = c.graph.serial_time().saturating_add(comm);
            assert!(total < 1 << 52, "{} risks overflow arithmetic", c.name);
        }
    }
}
