//! The paper's graph classification bands (§3).

use rand::Rng;

/// The five granularity bands of §3.1 (half-open intervals, low end
/// inclusive): `[0, 0.08)`, `[0.08, 0.2)`, `[0.2, 0.8)`, `[0.8, 2.0)`,
/// `[2.0, ∞)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GranularityBand {
    /// `G < 0.08` — communication dwarfs computation.
    VeryFine,
    /// `0.08 ≤ G < 0.2`.
    Fine,
    /// `0.2 ≤ G < 0.8`.
    Medium,
    /// `0.8 ≤ G < 2.0`.
    Coarse,
    /// `G ≥ 2.0` — the paper's "coarse grained" regime where list
    /// scheduling is provably within 2× of optimal.
    VeryCoarse,
}

impl GranularityBand {
    /// All bands, finest first (the paper's table row order).
    pub const ALL: [GranularityBand; 5] = [
        GranularityBand::VeryFine,
        GranularityBand::Fine,
        GranularityBand::Medium,
        GranularityBand::Coarse,
        GranularityBand::VeryCoarse,
    ];

    /// The `[lo, hi)` interval of the band (`hi` may be `∞`).
    pub fn range(self) -> (f64, f64) {
        match self {
            GranularityBand::VeryFine => (0.0, 0.08),
            GranularityBand::Fine => (0.08, 0.2),
            GranularityBand::Medium => (0.2, 0.8),
            GranularityBand::Coarse => (0.8, 2.0),
            GranularityBand::VeryCoarse => (2.0, f64::INFINITY),
        }
    }

    /// True iff granularity `g` falls in this band (`+∞` counts as
    /// very coarse).
    pub fn contains(self, g: f64) -> bool {
        let (lo, hi) = self.range();
        g >= lo && (g < hi || hi.is_infinite() && g.is_infinite())
    }

    /// The band containing granularity `g` (`None` for NaN or
    /// negative values).
    pub fn classify(g: f64) -> Option<GranularityBand> {
        if g.is_nan() || g < 0.0 {
            return None;
        }
        Self::ALL.into_iter().find(|b| b.contains(g))
    }

    /// A generation target inside the band, away from the boundaries
    /// so integer rounding cannot push the realized granularity out.
    pub fn sample_target(self, rng: &mut impl Rng) -> f64 {
        let (lo, hi) = match self {
            GranularityBand::VeryFine => (0.02, 0.07),
            GranularityBand::Fine => (0.09, 0.19),
            GranularityBand::Medium => (0.25, 0.75),
            GranularityBand::Coarse => (0.9, 1.9),
            GranularityBand::VeryCoarse => (2.2, 5.0),
        };
        rng.gen_range(lo..hi)
    }

    /// The paper's row label, e.g. `"0.08 < G < 0.2"`.
    pub fn label(self) -> &'static str {
        match self {
            GranularityBand::VeryFine => "G < 0.08",
            GranularityBand::Fine => "0.08 < G < 0.2",
            GranularityBand::Medium => "0.2 < G < 0.8",
            GranularityBand::Coarse => "0.8 < G < 2",
            GranularityBand::VeryCoarse => "2 < G",
        }
    }
}

/// A node weight range `[lo, hi]` (§3.3). The comparison tables use
/// `[20, 100]`, `[20, 200]` and `[20, 400]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WeightRange {
    /// Minimum node weight (inclusive).
    pub lo: u64,
    /// Maximum node weight (inclusive).
    pub hi: u64,
}

impl WeightRange {
    /// The paper's three ranges in table order (§3.3 and Tables 6–9).
    pub const PAPER: [WeightRange; 3] = [
        WeightRange { lo: 20, hi: 100 },
        WeightRange { lo: 20, hi: 200 },
        WeightRange { lo: 20, hi: 400 },
    ];

    /// Table 1 prints `10–100/200/300` instead (an internal
    /// inconsistency of the paper); exposed for completeness.
    pub const TABLE1: [WeightRange; 3] = [
        WeightRange { lo: 10, hi: 100 },
        WeightRange { lo: 10, hi: 200 },
        WeightRange { lo: 10, hi: 300 },
    ];

    /// Creates a range (`lo ≤ hi`, `lo ≥ 1`).
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo >= 1 && lo <= hi, "invalid weight range [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Draws one node weight.
    pub fn sample(self, rng: &mut impl Rng) -> u64 {
        rng.gen_range(self.lo..=self.hi)
    }

    /// True iff `w` lies in the range.
    pub fn contains(self, w: u64) -> bool {
        (self.lo..=self.hi).contains(&w)
    }

    /// Table row label, e.g. `"20 - 100"`.
    pub fn label(self) -> String {
        format!("{} - {}", self.lo, self.hi)
    }
}

/// The anchor out-degrees of §3.2 / Table 1 (2 through 5).
pub const PAPER_ANCHORS: [usize; 4] = [2, 3, 4, 5];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bands_partition_the_positive_reals() {
        for g in [
            0.0, 0.01, 0.0799, 0.08, 0.15, 0.2, 0.5, 0.8, 1.99, 2.0, 100.0,
        ] {
            let hits: Vec<_> = GranularityBand::ALL
                .into_iter()
                .filter(|b| b.contains(g))
                .collect();
            assert_eq!(hits.len(), 1, "g = {g} hit {hits:?}");
            assert_eq!(GranularityBand::classify(g), Some(hits[0]));
        }
        assert_eq!(GranularityBand::classify(f64::NAN), None);
        assert_eq!(GranularityBand::classify(-1.0), None);
        // Infinity is very coarse.
        assert_eq!(
            GranularityBand::classify(f64::INFINITY),
            Some(GranularityBand::VeryCoarse)
        );
    }

    #[test]
    fn boundaries_belong_to_the_upper_band() {
        assert_eq!(GranularityBand::classify(0.08), Some(GranularityBand::Fine));
        assert_eq!(
            GranularityBand::classify(0.2),
            Some(GranularityBand::Medium)
        );
        assert_eq!(
            GranularityBand::classify(0.8),
            Some(GranularityBand::Coarse)
        );
        assert_eq!(
            GranularityBand::classify(2.0),
            Some(GranularityBand::VeryCoarse)
        );
    }

    #[test]
    fn sampled_targets_stay_in_band() {
        let mut rng = StdRng::seed_from_u64(7);
        for band in GranularityBand::ALL {
            for _ in 0..200 {
                let t = band.sample_target(&mut rng);
                assert!(band.contains(t), "{band:?} produced {t}");
            }
        }
    }

    #[test]
    fn weight_range_sampling() {
        let mut rng = StdRng::seed_from_u64(7);
        let r = WeightRange::new(20, 100);
        let mut lo_seen = u64::MAX;
        let mut hi_seen = 0;
        for _ in 0..2000 {
            let w = r.sample(&mut rng);
            assert!(r.contains(w));
            lo_seen = lo_seen.min(w);
            hi_seen = hi_seen.max(w);
        }
        // With 2000 draws we cover the extremes w.h.p.
        assert_eq!(lo_seen, 20);
        assert_eq!(hi_seen, 100);
    }

    #[test]
    #[should_panic(expected = "invalid weight range")]
    fn rejects_inverted_range() {
        WeightRange::new(10, 5);
    }

    #[test]
    fn table1_variant_documents_the_papers_inconsistency() {
        // §3.3 and Tables 6–9 use 20–100/200/400; Table 1 prints
        // 10–100/200/300. Both are exposed; the study uses PAPER.
        assert_eq!(WeightRange::TABLE1[0], WeightRange::new(10, 100));
        assert_eq!(WeightRange::TABLE1[2], WeightRange::new(10, 300));
        assert_ne!(WeightRange::TABLE1, WeightRange::PAPER);
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(GranularityBand::VeryFine.label(), "G < 0.08");
        assert_eq!(WeightRange::PAPER[2].label(), "20 - 400");
        assert_eq!(PAPER_ANCHORS, [2, 3, 4, 5]);
    }
}
