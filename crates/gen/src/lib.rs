//! # dagsched-gen — random PDG generation and classification
//!
//! Reproduces the graph generation pipeline of Khan, McCreary & Jones
//! (§3, §5.1):
//!
//! 1. a **random parse tree** of series (linear) and parallel
//!    (independent) compositions is grown and realized as a DAG
//!    ([`parsetree`]);
//! 2. edges are randomly **removed and inserted** until the *anchor
//!    out-degree* (the mode of the out-degrees) matches the target
//!    ([`degree`]);
//! 3. node weights are drawn from the target **node weight range** and
//!    edge weights are scaled onto the target **granularity band**
//!    ([`pdg`]).
//!
//! [`spec`] defines the paper's classification bands; [`families`]
//! adds deterministic task-graph families (fork-join, trees, FFT
//! butterfly, Gaussian elimination, stencil sweeps, layered random)
//! used by examples, tests and ablations; [`adversarial`] provides
//! the deterministic torture corpus of degenerate and extreme graphs
//! used by the fault-isolation harness's differential tests.
//!
//! Generator parameters arrive from user input (CLI flags, corpus
//! definitions), so the pipeline reports bad specs as
//! [`GenError`] values rather than panicking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod degree;
pub mod error;
pub mod families;
pub mod parsetree;
pub mod pdg;
pub mod spec;

pub use adversarial::{torture_corpus, TortureCase};
pub use error::GenError;
pub use pdg::{generate, PdgSpec};
pub use spec::{GranularityBand, WeightRange};
