//! Deterministic task-graph families.
//!
//! The paper's intro motivates scheduling with parallelized numerical
//! programs; these families provide reproducible stand-ins for those
//! workloads (Gaussian elimination, FFT butterflies, stencil sweeps)
//! plus the structural extremes (chains, antichains, fork-join,
//! trees) used by examples, tests and ablation benches.

use dagsched_dag::{Dag, DagBuilder, NodeId, Weight};
use rand::Rng;

/// A chain of `n` tasks: `0 → 1 → … → n−1`.
pub fn chain(n: usize, node_w: Weight, edge_w: Weight) -> Dag {
    let mut b = DagBuilder::with_capacity(n, n.saturating_sub(1));
    let ids: Vec<_> = (0..n).map(|_| b.add_node(node_w)).collect();
    for w in ids.windows(2) {
        b.add_edge(w[0], w[1], edge_w).unwrap();
    }
    b.build().unwrap()
}

/// `n` independent tasks (an antichain).
pub fn independent(n: usize, node_w: Weight) -> Dag {
    let mut b = DagBuilder::with_capacity(n, 0);
    for _ in 0..n {
        b.add_node(node_w);
    }
    b.build().unwrap()
}

/// Fork-join: one source, `width` parallel middle tasks, one sink.
pub fn fork_join(width: usize, node_w: Weight, edge_w: Weight) -> Dag {
    let mut b = DagBuilder::with_capacity(width + 2, 2 * width);
    let src = b.add_node(node_w);
    let mids: Vec<_> = (0..width).map(|_| b.add_node(node_w)).collect();
    let snk = b.add_node(node_w);
    for &m in &mids {
        b.add_edge(src, m, edge_w).unwrap();
        b.add_edge(m, snk, edge_w).unwrap();
    }
    b.build().unwrap()
}

/// A complete binary out-tree of `levels` levels (`2^levels − 1`
/// nodes), root at index 0.
pub fn binary_out_tree(levels: u32, node_w: Weight, edge_w: Weight) -> Dag {
    let n = (1usize << levels) - 1;
    let mut b = DagBuilder::with_capacity(n, n - 1);
    let ids: Vec<_> = (0..n).map(|_| b.add_node(node_w)).collect();
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                b.add_edge(ids[i], ids[c], edge_w).unwrap();
            }
        }
    }
    b.build().unwrap()
}

/// A complete binary in-tree (reduction) of `levels` levels; sink at
/// index 0 of the mirrored out-tree — realized by transposing.
pub fn binary_in_tree(levels: u32, node_w: Weight, edge_w: Weight) -> Dag {
    dagsched_dag::transform::transpose(&binary_out_tree(levels, node_w, edge_w))
}

/// The task graph of Gaussian elimination on an `n × n` matrix
/// (column-oriented: one pivot task per step, one update task per
/// remaining column): `T_kk → T_kj` and `T_kj → T_(k+1)j`.
///
/// Node weights shrink with the remaining submatrix size, like the
/// real computation.
pub fn gaussian_elimination(n: usize, unit_w: Weight, edge_w: Weight) -> Dag {
    assert!(n >= 2);
    let mut b = DagBuilder::new();
    // pivot[k] and update[k][j] for j in k+1..n
    let mut pivot = Vec::with_capacity(n - 1);
    let mut update = vec![Vec::new(); n - 1];
    #[allow(clippy::needless_range_loop)] // k drives pivot, update and the weight law together
    for k in 0..n - 1 {
        let rem = (n - k) as Weight;
        pivot.push(b.add_node(unit_w * rem));
        for _j in k + 1..n {
            update[k].push(b.add_node(unit_w * rem));
        }
    }
    for k in 0..n - 1 {
        for (ji, &u) in update[k].iter().enumerate() {
            b.add_edge(pivot[k], u, edge_w).unwrap();
            let j = k + 1 + ji;
            if k + 1 < n - 1 {
                // Column j feeds step k+1: the pivot column j == k+1
                // feeds the next pivot; others feed the matching
                // update task.
                if j == k + 1 {
                    b.add_edge(u, pivot[k + 1], edge_w).unwrap();
                } else {
                    let next = update[k + 1][j - (k + 2)];
                    b.add_edge(u, next, edge_w).unwrap();
                }
            }
        }
    }
    b.build().unwrap()
}

/// The FFT butterfly task graph over `2^logn` points: `logn + 1`
/// ranks of `2^logn` tasks; each task feeds its same-index and
/// butterfly-partner successors.
pub fn fft(logn: u32, node_w: Weight, edge_w: Weight) -> Dag {
    let width = 1usize << logn;
    let ranks = logn as usize + 1;
    let mut b = DagBuilder::with_capacity(width * ranks, 2 * width * logn as usize);
    let mut grid = vec![vec![NodeId(0); width]; ranks];
    for row in grid.iter_mut() {
        for cell in row.iter_mut() {
            *cell = b.add_node(node_w);
        }
    }
    for r in 0..ranks - 1 {
        let stride = width >> (r + 1);
        for i in 0..width {
            b.add_edge(grid[r][i], grid[r + 1][i], edge_w).unwrap();
            b.add_edge(grid[r][i], grid[r + 1][i ^ stride], edge_w)
                .unwrap();
        }
    }
    b.build().unwrap()
}

/// A 2-D wavefront stencil sweep over an `rows × cols` grid: task
/// `(i, j)` depends on `(i−1, j)` and `(i, j−1)` — the dependence
/// pattern of Gauss-Seidel / dynamic-programming sweeps.
pub fn stencil(rows: usize, cols: usize, node_w: Weight, edge_w: Weight) -> Dag {
    let mut b = DagBuilder::with_capacity(rows * cols, 2 * rows * cols);
    let idx = |i: usize, j: usize| NodeId((i * cols + j) as u32);
    for _ in 0..rows * cols {
        b.add_node(node_w);
    }
    for i in 0..rows {
        for j in 0..cols {
            if i + 1 < rows {
                b.add_edge(idx(i, j), idx(i + 1, j), edge_w).unwrap();
            }
            if j + 1 < cols {
                b.add_edge(idx(i, j), idx(i, j + 1), edge_w).unwrap();
            }
        }
    }
    b.build().unwrap()
}

/// A random layered DAG: `layers` layers of `width` nodes; each node
/// picks 1–`max_fan` predecessors in the previous layer. A common
/// synthetic shape that is *not* series-parallel (exercises primitive
/// clans).
pub fn layered_random(
    layers: usize,
    width: usize,
    max_fan: usize,
    node_w: (Weight, Weight),
    edge_w: (Weight, Weight),
    rng: &mut impl Rng,
) -> Dag {
    assert!(layers >= 1 && width >= 1 && max_fan >= 1);
    let mut b = DagBuilder::new();
    let mut prev: Vec<NodeId> = Vec::new();
    for l in 0..layers {
        let cur: Vec<NodeId> = (0..width)
            .map(|_| b.add_node(rng.gen_range(node_w.0..=node_w.1)))
            .collect();
        if l > 0 {
            for &v in &cur {
                let fan = rng.gen_range(1..=max_fan.min(prev.len()));
                let mut picks: Vec<usize> = (0..prev.len()).collect();
                for k in 0..fan {
                    let swap = rng.gen_range(k..picks.len());
                    picks.swap(k, swap);
                    let p = prev[picks[k]];
                    b.add_edge(p, v, rng.gen_range(edge_w.0..=edge_w.1))
                        .unwrap();
                }
            }
        }
        prev = cur;
    }
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_dag::{levels, topo};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_shape() {
        let g = chain(5, 10, 2);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(topo::height(&g), 5);
        assert_eq!(levels::critical_path_len(&g), 5 * 10 + 4 * 2);
    }

    #[test]
    fn independent_shape() {
        let g = independent(7, 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(topo::max_width(&g), 7);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(4, 10, 5);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(levels::critical_path_len(&g), 10 + 5 + 10 + 5 + 10);
    }

    #[test]
    fn binary_trees() {
        let out = binary_out_tree(4, 1, 1);
        assert_eq!(out.num_nodes(), 15);
        assert_eq!(out.num_edges(), 14);
        assert_eq!(out.sources().len(), 1);
        assert_eq!(out.sinks().len(), 8);
        let int = binary_in_tree(4, 1, 1);
        assert_eq!(int.sources().len(), 8);
        assert_eq!(int.sinks().len(), 1);
    }

    #[test]
    fn gaussian_elimination_shape() {
        let g = gaussian_elimination(4, 2, 5);
        // Steps k=0,1,2 with 3+2+1 updates + 3 pivots = 9 tasks.
        assert_eq!(g.num_nodes(), 9);
        // One source (first pivot), sinks at the last step.
        assert_eq!(g.sources().len(), 1);
        assert!(topo::height(&g) >= 5);
        // Weights shrink with k: first pivot cost 2*4, last 2*2.
        assert_eq!(g.node_weight(NodeId(0)), 8);
    }

    #[test]
    fn fft_shape() {
        let g = fft(3, 1, 1);
        assert_eq!(g.num_nodes(), 8 * 4);
        assert_eq!(g.num_edges(), 8 * 3 * 2);
        assert_eq!(g.sources().len(), 8);
        assert_eq!(g.sinks().len(), 8);
        assert_eq!(topo::height(&g), 4);
        // Every non-sink has out-degree exactly 2.
        for v in g.nodes() {
            let d = g.out_degree(v);
            assert!(d == 0 || d == 2);
        }
    }

    #[test]
    fn stencil_shape() {
        let g = stencil(3, 4, 1, 1);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // (cols-1)*rows + (rows-1)*cols
        assert_eq!(g.sources(), vec![NodeId(0)]);
        assert_eq!(g.sinks(), vec![NodeId(11)]);
        assert_eq!(topo::height(&g), 3 + 4 - 1);
    }

    #[test]
    fn layered_random_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = layered_random(5, 6, 3, (20, 100), (1, 50), &mut rng);
        assert_eq!(g.num_nodes(), 30);
        assert_eq!(topo::height(&g), 5);
        // Every non-first-layer node has at least one predecessor.
        assert_eq!(g.sources().len(), 6);
        // Deterministic per seed.
        let g2 = layered_random(5, 6, 3, (20, 100), (1, 50), &mut StdRng::seed_from_u64(5));
        assert_eq!(g, g2);
    }
}
