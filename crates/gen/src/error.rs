//! Generation errors.
//!
//! The generators are reachable from user input (CLI specs, corpus
//! definitions), so bad parameters surface as [`GenError`] values
//! instead of panics; graph-construction failures bubble up from
//! [`dagsched_dag::DagError`].

use dagsched_dag::DagError;
use std::fmt;

/// An error from the graph generation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// A generator parameter is outside its documented domain.
    BadSpec {
        /// The offending parameter.
        param: &'static str,
        /// Why it was rejected.
        why: &'static str,
    },
    /// Realizing the generated structure as a DAG failed.
    Dag(DagError),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::BadSpec { param, why } => write!(f, "bad generator spec: {param} {why}"),
            GenError::Dag(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl std::error::Error for GenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenError::Dag(e) => Some(e),
            GenError::BadSpec { .. } => None,
        }
    }
}

impl From<DagError> for GenError {
    fn from(e: DagError) -> Self {
        GenError::Dag(e)
    }
}

/// Generation result alias.
pub type Result<T> = std::result::Result<T, GenError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let bad = GenError::BadSpec {
            param: "max_arity",
            why: "must be at least 2",
        };
        assert_eq!(
            bad.to_string(),
            "bad generator spec: max_arity must be at least 2"
        );
        assert!(std::error::Error::source(&bad).is_none());

        let wrapped = GenError::from(DagError::SelfLoop(3));
        assert!(wrapped
            .to_string()
            .starts_with("graph construction failed:"));
        assert!(std::error::Error::source(&wrapped).is_some());
    }
}
