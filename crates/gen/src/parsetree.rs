//! Random parse-tree (series-parallel) DAG generation — step 1 of the
//! paper's pipeline (§5.1: "The graph generation system generates
//! graphs using a random parse tree generator").
//!
//! The generator grows a random tree of *linear* (series) and
//! *independent* (parallel) composition nodes over a given number of
//! leaves and realizes it as a DAG: parallel children are disjoint,
//! series children are joined by complete sink→source bipartite edge
//! sets (which is exactly what makes each subtree a clan).

use crate::error::{GenError, Result};
use dagsched_dag::{Dag, DagBuilder, NodeId, Weight};
use rand::Rng;

/// Parameters for the parse-tree generator.
#[derive(Debug, Clone)]
pub struct ParseTreeSpec {
    /// Number of task nodes (`0` yields the empty graph).
    pub nodes: usize,
    /// Inclusive node-weight range to draw from.
    pub node_weights: (Weight, Weight),
    /// Inclusive edge-weight range to draw from (granularity targeting
    /// rescales these later).
    pub edge_weights: (Weight, Weight),
    /// Probability that an internal composition is *series* rather
    /// than *parallel* (0.0–1.0).
    pub series_bias: f64,
    /// Maximum fan of a composition node (≥ 2).
    pub max_arity: usize,
}

impl Default for ParseTreeSpec {
    fn default() -> Self {
        Self {
            nodes: 50,
            node_weights: (20, 100),
            edge_weights: (1, 100),
            series_bias: 0.5,
            max_arity: 4,
        }
    }
}

/// Generates a random series-parallel DAG per `spec`.
///
/// `nodes == 0` yields the empty graph. Out-of-domain parameters are
/// reported as [`GenError::BadSpec`] instead of panicking — these
/// specs arrive from user input (CLI, corpus definitions).
pub fn generate(spec: &ParseTreeSpec, rng: &mut impl Rng) -> Result<Dag> {
    if spec.max_arity < 2 {
        return Err(GenError::BadSpec {
            param: "max_arity",
            why: "compositions need arity ≥ 2",
        });
    }
    if spec.node_weights.0 < 1 || spec.node_weights.0 > spec.node_weights.1 {
        return Err(GenError::BadSpec {
            param: "node_weights",
            why: "range must satisfy 1 ≤ lo ≤ hi",
        });
    }
    if spec.edge_weights.0 < 1 || spec.edge_weights.0 > spec.edge_weights.1 {
        return Err(GenError::BadSpec {
            param: "edge_weights",
            why: "range must satisfy 1 ≤ lo ≤ hi",
        });
    }
    if !(0.0..=1.0).contains(&spec.series_bias) {
        return Err(GenError::BadSpec {
            param: "series_bias",
            why: "must be a probability in [0, 1]",
        });
    }
    let mut b = DagBuilder::with_capacity(spec.nodes, spec.nodes * 2);
    if spec.nodes > 0 {
        // Top level is series with probability `series_bias`, like any
        // other level.
        let _ = grow(&mut b, spec, rng, spec.nodes);
    }
    Ok(b.build()?)
}

/// Recursively realizes a subtree over `n` leaves; returns the
/// fragment's (sources, sinks).
fn grow(
    b: &mut DagBuilder,
    spec: &ParseTreeSpec,
    rng: &mut impl Rng,
    n: usize,
) -> (Vec<NodeId>, Vec<NodeId>) {
    if n == 1 {
        let w = rng.gen_range(spec.node_weights.0..=spec.node_weights.1);
        let v = b.add_node(w);
        return (vec![v], vec![v]);
    }
    let arity = rng.gen_range(2..=spec.max_arity.min(n));
    let parts = random_split(rng, n, arity);
    let series = rng.gen_bool(spec.series_bias);
    let mut sources = Vec::new();
    let mut sinks: Vec<NodeId> = Vec::new();
    for (i, part) in parts.into_iter().enumerate() {
        let (part_src, part_snk) = grow(b, spec, rng, part);
        if series {
            if i == 0 {
                sources = part_src;
            } else {
                // Complete bipartite junction keeps each side a clan.
                for &s in &sinks {
                    for &d in &part_src {
                        let w = rng.gen_range(spec.edge_weights.0..=spec.edge_weights.1);
                        b.add_edge(s, d, w).expect("fresh junction edge");
                    }
                }
            }
            sinks = part_snk;
        } else {
            sources.extend(part_src);
            sinks.extend(part_snk);
        }
    }
    (sources, sinks)
}

/// Splits `n` into `k ≥ 2` positive parts, uniformly-ish at random.
fn random_split(rng: &mut impl Rng, n: usize, k: usize) -> Vec<usize> {
    debug_assert!(k >= 2 && k <= n);
    // Stars and bars: choose k-1 distinct cut points in 1..n.
    let mut cuts = Vec::with_capacity(k - 1);
    while cuts.len() < k - 1 {
        let c = rng.gen_range(1..n);
        if !cuts.contains(&c) {
            cuts.push(c);
        }
    }
    cuts.sort_unstable();
    let mut parts = Vec::with_capacity(k);
    let mut prev = 0;
    for c in cuts {
        parts.push(c - prev);
        prev = c;
    }
    parts.push(n - prev);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_clans::{ClanKind, ParseTree};
    use dagsched_dag::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_nodes_yield_the_empty_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generate(
            &ParseTreeSpec {
                nodes: 0,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn bad_specs_are_reported_not_panicked() {
        let mut rng = StdRng::seed_from_u64(1);
        let cases = [
            (
                ParseTreeSpec {
                    max_arity: 1,
                    ..Default::default()
                },
                "max_arity",
            ),
            (
                ParseTreeSpec {
                    node_weights: (0, 10),
                    ..Default::default()
                },
                "node_weights",
            ),
            (
                ParseTreeSpec {
                    edge_weights: (9, 5),
                    ..Default::default()
                },
                "edge_weights",
            ),
            (
                ParseTreeSpec {
                    series_bias: 1.5,
                    ..Default::default()
                },
                "series_bias",
            ),
        ];
        for (spec, expect_param) in cases {
            match generate(&spec, &mut rng) {
                Err(crate::error::GenError::BadSpec { param, .. }) => {
                    assert_eq!(param, expect_param)
                }
                other => panic!("expected BadSpec for {expect_param}, got {other:?}"),
            }
        }
    }

    #[test]
    fn generates_requested_node_count() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 30, 80] {
            let g = generate(
                &ParseTreeSpec {
                    nodes: n,
                    ..Default::default()
                },
                &mut rng,
            )
            .unwrap();
            assert_eq!(g.num_nodes(), n);
        }
    }

    #[test]
    fn weights_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = ParseTreeSpec {
            nodes: 60,
            node_weights: (20, 100),
            edge_weights: (5, 9),
            ..Default::default()
        };
        let g = generate(&spec, &mut rng).unwrap();
        assert_eq!(metrics::node_weight_range(&g), {
            let (lo, hi) = metrics::node_weight_range(&g).unwrap();
            assert!(lo >= 20 && hi <= 100);
            Some((lo, hi))
        });
        for e in g.edges() {
            assert!((5..=9).contains(&e.weight));
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let spec = ParseTreeSpec {
            nodes: 40,
            ..Default::default()
        };
        let g1 = generate(&spec, &mut StdRng::seed_from_u64(77)).unwrap();
        let g2 = generate(&spec, &mut StdRng::seed_from_u64(77)).unwrap();
        assert_eq!(g1, g2);
        let g3 = generate(&spec, &mut StdRng::seed_from_u64(78)).unwrap();
        assert_ne!(g1, g3, "different seeds should differ w.h.p.");
    }

    #[test]
    fn output_is_fully_decomposable() {
        // By construction the parse tree has no primitive clans.
        let mut rng = StdRng::seed_from_u64(3);
        for n in [5usize, 20, 50] {
            let g = generate(
                &ParseTreeSpec {
                    nodes: n,
                    ..Default::default()
                },
                &mut rng,
            )
            .unwrap();
            let tree = ParseTree::decompose(&g);
            for id in tree.clan_ids() {
                assert_ne!(
                    tree.clan(id).kind,
                    ClanKind::Primitive,
                    "series-parallel graphs decompose without primitive clans"
                );
            }
        }
    }

    #[test]
    fn series_bias_one_yields_a_chain_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = ParseTreeSpec {
            nodes: 20,
            series_bias: 1.0,
            ..Default::default()
        };
        let g = generate(&spec, &mut rng).unwrap();
        // Pure series composition: single source, single sink, and the
        // longest path touches every node (a linear parse tree).
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(dagsched_dag::topo::height(&g), 20);
    }

    #[test]
    fn series_bias_zero_yields_an_antichain() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = ParseTreeSpec {
            nodes: 20,
            series_bias: 0.0,
            ..Default::default()
        };
        let g = generate(&spec, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.sources().len(), 20);
    }

    #[test]
    fn random_split_properties() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let n = rng.gen_range(2..50);
            let k = rng.gen_range(2..=n.min(6));
            let parts = random_split(&mut rng, n, k);
            assert_eq!(parts.len(), k);
            assert_eq!(parts.iter().sum::<usize>(), n);
            assert!(parts.iter().all(|&p| p >= 1));
        }
    }
}
