//! The full PDG generation pipeline (parse tree → anchor adjustment →
//! weight assignment → granularity targeting) and its specification.

use crate::degree::adjust_anchor;
use crate::error::{GenError, Result};
use crate::parsetree::{generate as gen_parsetree, ParseTreeSpec};
use crate::spec::{GranularityBand, WeightRange};
use dagsched_dag::{metrics, Dag, DagBuilder, Weight};
use rand::Rng;

/// Specification of one random PDG, mirroring the paper's three
/// classification criteria plus a node count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdgSpec {
    /// Number of task nodes.
    pub nodes: usize,
    /// Target anchor out-degree (mode of the non-sink out-degrees).
    pub anchor: usize,
    /// Node weight range.
    pub weights: WeightRange,
    /// Target granularity band.
    pub band: GranularityBand,
}

impl PdgSpec {
    /// A convenient mid-corpus default: 50 nodes, anchor 3,
    /// weights 20–100, medium granularity.
    pub fn example() -> Self {
        PdgSpec {
            nodes: 50,
            anchor: 3,
            weights: WeightRange::new(20, 100),
            band: GranularityBand::Medium,
        }
    }
}

/// Generates one PDG matching `spec`.
///
/// The returned graph classifies into the requested band / range /
/// anchor except in degenerate cases (graphs whose anchor pass cannot
/// reach the target because the topology ran out of forward targets —
/// rare at the corpus sizes; the experiments crate re-checks and
/// re-draws when it matters).
///
/// Out-of-domain parameters (and any construction failure) are
/// reported as [`GenError`] instead of panicking.
pub fn generate(spec: &PdgSpec, rng: &mut impl Rng) -> Result<Dag> {
    // 1. Random parse tree with the requested node weights. Initial
    //    edge weights start near the node weight scale; granularity
    //    targeting rescales them.
    let base = ParseTreeSpec {
        nodes: spec.nodes,
        node_weights: (spec.weights.lo, spec.weights.hi),
        edge_weights: (1.max(spec.weights.lo / 2), spec.weights.hi),
        series_bias: 0.42,
        max_arity: 8,
    };
    let g = gen_parsetree(&base, rng)?;

    // 2. Anchor out-degree adjustment.
    let g = adjust_anchor(&g, spec.anchor, base.edge_weights, rng)?;

    // 3. Granularity targeting.
    let target = spec.band.sample_target(rng);
    retarget_granularity(&g, target, spec.band)
}

/// Rescales every edge weight by the constant factor that moves the
/// measured granularity onto `target`, iterating a few times to absorb
/// integer rounding. Returns the best graph found (the one whose
/// granularity classifies into `band`, or the closest attempt).
///
/// A non-finite or non-positive `target` is a [`GenError::BadSpec`].
pub fn retarget_granularity(g: &Dag, target: f64, band: GranularityBand) -> Result<Dag> {
    if !(target.is_finite() && target > 0.0) {
        return Err(GenError::BadSpec {
            param: "target",
            why: "granularity target must be finite and positive",
        });
    }
    let mut current = g.clone();
    if current.num_edges() == 0 {
        return Ok(current); // granularity is infinite and immovable
    }
    let mut best: Option<(f64, Dag)> = None;
    for _ in 0..12 {
        let gran = metrics::granularity(&current);
        let dist = (gran.ln() - target.ln()).abs();
        if band.contains(gran) {
            return Ok(current);
        }
        match &best {
            Some((d, _)) if *d <= dist => {}
            _ => best = Some((dist, current.clone())),
        }
        // granularity ∝ 1 / edge-scale, so multiply edges by
        // gran / target to land on target.
        let factor = gran / target;
        let mut b = current.to_builder();
        b.map_edge_weights(|w| {
            let scaled = (w as f64 * factor).round();
            (scaled.max(1.0) as Weight).max(1)
        });
        current = b.build()?;
        // If the scale factor rounds to a no-op (all weights already
        // at the floor), perturb by nudging node-side instead: bail
        // out — caller keeps the closest attempt.
        if metrics::granularity(&current) == gran {
            break;
        }
    }
    let final_gran = metrics::granularity(&current);
    if band.contains(final_gran) {
        Ok(current)
    } else {
        match best {
            Some((d, g_best)) if d < (final_gran.ln() - target.ln()).abs() => Ok(g_best),
            _ => Ok(current),
        }
    }
}

/// Samples a node count uniformly from `range` and generates a PDG —
/// the corpus helper (the paper does not fix a node count; the
/// reproduction draws 60–110 by default).
pub fn generate_sized(
    nodes: std::ops::RangeInclusive<usize>,
    anchor: usize,
    weights: WeightRange,
    band: GranularityBand,
    rng: &mut impl Rng,
) -> Result<Dag> {
    if nodes.is_empty() {
        return Err(GenError::BadSpec {
            param: "nodes",
            why: "node-count range is empty",
        });
    }
    let n = rng.gen_range(nodes);
    generate(
        &PdgSpec {
            nodes: n,
            anchor,
            weights,
            band,
        },
        rng,
    )
}

/// Builds a tiny hand-specified PDG (used in doctests/examples):
/// weights and edges given explicitly. Malformed lists (bad indices,
/// duplicates, cycles) surface as [`GenError`].
pub fn from_lists(node_weights: &[Weight], edges: &[(u32, u32, Weight)]) -> Result<Dag> {
    let mut b = DagBuilder::with_capacity(node_weights.len(), edges.len());
    for &w in node_weights {
        b.add_node(w);
    }
    for &(s, d, w) in edges {
        b.add_edge(dagsched_dag::NodeId(s), dagsched_dag::NodeId(d), w)?;
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_graphs_classify_correctly() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut hits = 0;
        let mut total = 0;
        for band in GranularityBand::ALL {
            for anchor in [2usize, 4] {
                for weights in [WeightRange::new(20, 100), WeightRange::new(20, 400)] {
                    let spec = PdgSpec {
                        nodes: 50,
                        anchor,
                        weights,
                        band,
                    };
                    let g = generate(&spec, &mut rng).unwrap();
                    total += 1;
                    let gran = metrics::granularity(&g);
                    if band.contains(gran) {
                        hits += 1;
                    }
                    // Weight range always holds exactly.
                    let (lo, hi) = metrics::node_weight_range(&g).unwrap();
                    assert!(lo >= weights.lo && hi <= weights.hi);
                    assert_eq!(g.num_nodes(), 50);
                }
            }
        }
        assert!(
            hits == total,
            "granularity targeting missed: {hits}/{total}"
        );
    }

    #[test]
    fn anchor_survives_the_pipeline() {
        let mut rng = StdRng::seed_from_u64(43);
        for anchor in 2..=5 {
            let spec = PdgSpec {
                nodes: 60,
                anchor,
                weights: WeightRange::new(20, 200),
                band: GranularityBand::Medium,
            };
            let g = generate(&spec, &mut rng).unwrap();
            assert_eq!(metrics::anchor_out_degree_nonsink(&g), anchor);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = PdgSpec::example();
        let a = generate(&spec, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = generate(&spec, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn retarget_moves_granularity_both_ways() {
        let g = from_lists(&[100, 100, 100, 1], &[(0, 1, 10), (1, 2, 10), (2, 3, 10)]).unwrap();
        // Currently G = 10. Move fine:
        let fine = retarget_granularity(&g, 0.05, GranularityBand::VeryFine).unwrap();
        assert!(GranularityBand::VeryFine.contains(metrics::granularity(&fine)));
        // And back to very coarse:
        let coarse = retarget_granularity(&fine, 3.0, GranularityBand::VeryCoarse).unwrap();
        assert!(GranularityBand::VeryCoarse.contains(metrics::granularity(&coarse)));
    }

    #[test]
    fn retarget_handles_edgeless_graphs() {
        let g = from_lists(&[5, 5], &[]).unwrap();
        let out = retarget_granularity(&g, 0.05, GranularityBand::VeryFine).unwrap();
        assert_eq!(out, g);
    }

    #[test]
    fn generate_sized_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..10 {
            let g = generate_sized(
                30..=40,
                3,
                WeightRange::new(20, 100),
                GranularityBand::Coarse,
                &mut rng,
            )
            .unwrap();
            assert!((30..=40).contains(&g.num_nodes()));
        }
    }

    #[test]
    fn from_lists_builds_exactly() {
        let g = from_lists(&[1, 2, 3], &[(0, 2, 7)]).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.total_comm(), 7);
    }

    #[test]
    fn pipeline_errors_are_values_not_panics() {
        let mut rng = StdRng::seed_from_u64(45);
        // Zero anchor flows out of the pipeline as BadSpec.
        let bad = generate(
            &PdgSpec {
                anchor: 0,
                ..PdgSpec::example()
            },
            &mut rng,
        );
        assert!(matches!(
            bad,
            Err(GenError::BadSpec {
                param: "anchor",
                ..
            })
        ));
        // Bad granularity target.
        let g = from_lists(&[5, 5], &[(0, 1, 2)]).unwrap();
        assert!(matches!(
            retarget_granularity(&g, f64::NAN, GranularityBand::Medium),
            Err(GenError::BadSpec {
                param: "target",
                ..
            })
        ));
        // Empty node-count range.
        #[allow(clippy::reversed_empty_ranges)]
        let empty_nodes = 10..=5;
        assert!(generate_sized(
            empty_nodes,
            3,
            WeightRange::new(20, 100),
            GranularityBand::Medium,
            &mut rng,
        )
        .is_err());
        // Malformed explicit lists.
        assert!(from_lists(&[1], &[(0, 5, 1)]).is_err());
        assert!(from_lists(&[1, 1], &[(0, 1, 1), (1, 0, 1)]).is_err());
    }
}
