//! Anchor out-degree adjustment — step 2 of the paper's pipeline
//! (§5.1: "The graphs are then modified by removing and inserting
//! randomly connected edges to match the given anchor out-degree").
//!
//! Each non-sink node's out-degree is pushed toward the target by
//! deleting random out-edges (never stealing a node's last in-edge)
//! and inserting edges toward random topologically later nodes (which
//! can never create a cycle). The resulting mode of the non-sink
//! out-degrees is the requested anchor whenever enough later targets
//! exist.

use crate::error::{GenError, Result};
use dagsched_dag::{topo, Dag, DagBuilder, NodeId, Weight};
use rand::seq::SliceRandom;
use rand::Rng;

/// Rewires `g` so the anchor out-degree (mode over non-sink nodes)
/// becomes `anchor`. Inserted edges get weights drawn uniformly from
/// `edge_weights`. Out-of-domain parameters are reported as
/// [`GenError::BadSpec`].
pub fn adjust_anchor(
    g: &Dag,
    anchor: usize,
    edge_weights: (Weight, Weight),
    rng: &mut impl Rng,
) -> Result<Dag> {
    if anchor < 1 {
        return Err(GenError::BadSpec {
            param: "anchor",
            why: "out-degree target must be at least 1",
        });
    }
    if edge_weights.0 < 1 || edge_weights.0 > edge_weights.1 {
        return Err(GenError::BadSpec {
            param: "edge_weights",
            why: "range must satisfy 1 ≤ lo ≤ hi",
        });
    }
    let n = g.num_nodes();
    if n <= 1 {
        return Ok(g.clone());
    }

    // Mutable adjacency mirrors.
    let mut succs: Vec<Vec<(u32, Weight)>> = (0..n)
        .map(|v| g.succs(NodeId(v as u32)).map(|(d, w)| (d.0, w)).collect())
        .collect();
    let mut in_deg: Vec<usize> = (0..n).map(|v| g.in_degree(NodeId(v as u32))).collect();

    // A fixed topological position; inserting edges "forward" in this
    // order preserves acyclicity regardless of earlier insertions.
    let pos = topo::positions(g.topo_order(), n);
    let mut by_pos: Vec<u32> = (0..n as u32).collect();
    by_pos.sort_by_key(|&v| pos[v as usize]);

    let mut visit: Vec<u32> = (0..n as u32).collect();
    visit.shuffle(rng);
    for v in visit {
        let vi = v as usize;
        if succs[vi].is_empty() {
            continue; // sinks stay sinks: the anchor counts non-sinks
        }
        // Trim overly branchy nodes.
        while succs[vi].len() > anchor {
            // Candidates whose head keeps another in-edge.
            let removable: Vec<usize> = (0..succs[vi].len())
                .filter(|&k| in_deg[succs[vi][k].0 as usize] > 1)
                .collect();
            let Some(&k) = removable.choose(rng) else {
                break; // every out-edge is someone's only input
            };
            let (head, _) = succs[vi].swap_remove(k);
            in_deg[head as usize] -= 1;
        }
        // Grow underbranchy nodes toward later targets.
        if succs[vi].len() < anchor {
            let have: std::collections::HashSet<u32> = succs[vi].iter().map(|&(d, _)| d).collect();
            let mut candidates: Vec<u32> = by_pos[pos[vi] + 1..]
                .iter()
                .copied()
                .filter(|&u| !have.contains(&u))
                .collect();
            candidates.shuffle(rng);
            for u in candidates {
                if succs[vi].len() >= anchor {
                    break;
                }
                let w = rng.gen_range(edge_weights.0..=edge_weights.1);
                succs[vi].push((u, w));
                in_deg[u as usize] += 1;
            }
        }
    }

    let mut b = DagBuilder::with_capacity(n, succs.iter().map(Vec::len).sum());
    for &w in g.node_weights() {
        b.add_node(w);
    }
    for (v, out) in succs.iter().enumerate() {
        for &(d, w) in out {
            // The adjacency mirror has no duplicates by construction;
            // any failure surfaces as a GenError, never a panic.
            b.add_edge(NodeId(v as u32), NodeId(d), w)?;
        }
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsetree::{generate, ParseTreeSpec};
    use dagsched_dag::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sp_graph(n: usize, seed: u64) -> Dag {
        generate(
            &ParseTreeSpec {
                nodes: n,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap()
    }

    #[test]
    fn hits_the_target_anchor() {
        let mut rng = StdRng::seed_from_u64(11);
        for anchor in 2..=5usize {
            for seed in 0..5u64 {
                let g = sp_graph(50, seed);
                let adjusted = adjust_anchor(&g, anchor, (1, 50), &mut rng).unwrap();
                assert_eq!(
                    metrics::anchor_out_degree_nonsink(&adjusted),
                    anchor,
                    "anchor {anchor}, seed {seed}"
                );
                assert_eq!(adjusted.num_nodes(), g.num_nodes());
            }
        }
    }

    #[test]
    fn node_weights_untouched() {
        let g = sp_graph(40, 3);
        let adjusted = adjust_anchor(&g, 3, (1, 50), &mut StdRng::seed_from_u64(12)).unwrap();
        assert_eq!(adjusted.node_weights(), g.node_weights());
    }

    #[test]
    fn result_is_acyclic_and_preserves_sinks() {
        // Sinks remain sinks: the pass only rewires branching nodes.
        let g = sp_graph(60, 4);
        let sinks_before = g.sinks().len();
        let adjusted = adjust_anchor(&g, 4, (1, 50), &mut StdRng::seed_from_u64(13)).unwrap();
        // Build succeeded => acyclic. Sinks can only stay or grow
        // (trimming may create new sinks is *not* allowed — trimming
        // stops at out-degree `anchor` ≥ 1).
        assert!(adjusted.sinks().len() >= sinks_before);
        for v in g.sinks() {
            assert_eq!(adjusted.out_degree(v), 0);
        }
    }

    #[test]
    fn never_orphans_a_node() {
        // No node should lose its last in-edge.
        let g = sp_graph(60, 5);
        let sources_before = g.sources().len();
        let adjusted = adjust_anchor(&g, 2, (1, 50), &mut StdRng::seed_from_u64(14)).unwrap();
        assert!(adjusted.sources().len() <= sources_before.max(1));
    }

    #[test]
    fn tiny_graphs_pass_through() {
        let g = sp_graph(1, 6);
        let adjusted = adjust_anchor(&g, 3, (1, 50), &mut StdRng::seed_from_u64(15)).unwrap();
        assert_eq!(adjusted, g);
    }

    #[test]
    fn bad_parameters_are_reported_not_panicked() {
        let g = sp_graph(10, 8);
        let mut rng = StdRng::seed_from_u64(17);
        assert!(matches!(
            adjust_anchor(&g, 0, (1, 50), &mut rng),
            Err(GenError::BadSpec {
                param: "anchor",
                ..
            })
        ));
        assert!(matches!(
            adjust_anchor(&g, 3, (5, 2), &mut rng),
            Err(GenError::BadSpec {
                param: "edge_weights",
                ..
            })
        ));
    }

    #[test]
    fn inserted_edge_weights_in_range() {
        let g = sp_graph(50, 7);
        let adjusted = adjust_anchor(&g, 5, (7, 7), &mut StdRng::seed_from_u64(16)).unwrap();
        // Every edge not shared with the original has weight 7.
        let orig: std::collections::HashSet<(u32, u32)> =
            g.edges().iter().map(|e| (e.src.0, e.dst.0)).collect();
        let mut saw_new = false;
        for e in adjusted.edges() {
            if !orig.contains(&(e.src.0, e.dst.0)) {
                assert_eq!(e.weight, 7);
                saw_new = true;
            }
        }
        assert!(saw_new, "anchor 5 should force insertions");
    }
}
