//! The [`RobustScheduler`] wrapper and its fallback machinery.

use crate::incident::{Fault, GraphFingerprint, Incident};
use dagsched_core::{Hu, Scheduler, Serial};
use dagsched_dag::Dag;
use dagsched_obs as obs;
use dagsched_sim::{validate, Machine, ProcId, Schedule};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Name reported for schedules synthesized by [`serial_placement`]
/// when every entry of a fallback chain has faulted.
pub const SERIAL_PLACEMENT: &str = "SERIAL-PLACEMENT";

/// Containment policy for a [`RobustScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Wall-clock budget per attempt. `None` disables the deadline.
    ///
    /// [`RobustScheduler::run`] enforces the budget preemptively with
    /// a watchdog thread; the borrowed [`Scheduler::schedule`] entry
    /// point can only check it after the attempt returns (see
    /// [`RobustScheduler`] docs).
    pub time_budget: Option<Duration>,
    /// Check every produced schedule against the independent oracle
    /// (`dagsched_sim::validate::check`). On by default; turning it
    /// off keeps panic/deadline containment only.
    pub validate: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            time_budget: None,
            validate: true,
        }
    }
}

/// The result of one fault-isolated run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The schedule that completed the run — always oracle-valid when
    /// validation is enabled.
    pub schedule: Schedule,
    /// Name of the chain entry that produced [`RunOutcome::schedule`]
    /// ([`SERIAL_PLACEMENT`] if the whole chain faulted).
    pub scheduled_by: &'static str,
    /// One record per chain entry that faulted before the run
    /// completed (empty on a clean first-try run).
    pub incidents: Vec<Incident>,
}

impl RunOutcome {
    /// `true` when the requested heuristic did not produce the
    /// schedule itself.
    pub fn fell_back(&self) -> bool {
        !self.incidents.is_empty()
    }
}

/// Wraps a primary [`Scheduler`] with panic containment, an optional
/// wall-clock budget, oracle validation, and a fallback chain, so a
/// run always completes with a valid schedule.
///
/// Two entry points:
///
/// * [`RobustScheduler::run`] — the full harness. Takes the machine
///   as `Arc<dyn Machine>` so attempts can be moved onto a watchdog
///   thread and *abandoned* when the time budget expires.
/// * The [`Scheduler`] impl — a drop-in wrapper for registry code
///   that only knows `&dyn Machine`. Runs attempts inline: panics and
///   invalid schedules are contained identically, but a configured
///   time budget is only checked *after* each attempt returns (a
///   non-terminating heuristic cannot be preempted without ownership
///   of its inputs). Incidents are accumulated in an internal log —
///   drain with [`RobustScheduler::take_incidents`].
pub struct RobustScheduler {
    chain: Vec<Arc<dyn Scheduler>>,
    config: HarnessConfig,
    log: Mutex<Vec<Incident>>,
}

impl RobustScheduler {
    /// Wraps `primary` with the default fallback chain
    /// (`primary → HU → SERIAL`) and default config.
    pub fn new(primary: Arc<dyn Scheduler>) -> Self {
        let primary_name = primary.name();
        let mut s = Self::bare(primary);
        if primary_name != Hu.name() {
            s.chain.push(Arc::new(Hu));
        }
        if primary_name != Serial.name() {
            s.chain.push(Arc::new(Serial));
        }
        s
    }

    /// As [`RobustScheduler::new`] from an owned scheduler value.
    pub fn wrap(primary: impl Scheduler + 'static) -> Self {
        Self::new(Arc::new(primary))
    }

    /// Wraps `primary` with *no* fallbacks: a faulting run degrades
    /// straight to [`serial_placement`].
    pub fn bare(primary: Arc<dyn Scheduler>) -> Self {
        RobustScheduler {
            chain: vec![primary],
            config: HarnessConfig::default(),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Appends `fallback` to the chain.
    pub fn push_fallback(mut self, fallback: Arc<dyn Scheduler>) -> Self {
        self.chain.push(fallback);
        self
    }

    /// Replaces the containment policy.
    pub fn with_config(mut self, config: HarnessConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the per-attempt wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.config.time_budget = Some(budget);
        self
    }

    /// Disables oracle validation (panic/deadline containment stays).
    pub fn without_validation(mut self) -> Self {
        self.config.validate = false;
        self
    }

    /// The active containment policy.
    pub fn config(&self) -> HarnessConfig {
        self.config
    }

    /// Chain entry names, primary first.
    pub fn chain_names(&self) -> Vec<&'static str> {
        self.chain.iter().map(|h| h.name()).collect()
    }

    /// Drains the incidents accumulated by every run so far (in run
    /// order).
    pub fn take_incidents(&self) -> Vec<Incident> {
        std::mem::take(&mut *self.lock_log())
    }

    fn lock_log(&self) -> std::sync::MutexGuard<'_, Vec<Incident>> {
        // A panic while holding this lock is impossible (extend/take
        // only), but poisoning must not cascade into the harness.
        self.log.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs the full harness: walk the fallback chain until an
    /// attempt survives containment, validation and (when configured)
    /// the watchdog deadline; synthesize a [`serial_placement`] if
    /// none does.
    ///
    /// Every chain entry schedules the same `&Dag`, so the graph's
    /// `DagAnalysis` labelling cache is shared down the whole fallback
    /// chain — a fallback never recomputes what the faulted primary
    /// already materialized. (The watchdog path below is the one
    /// exception: it must own its input, and `Dag`'s `Clone` starts
    /// with a cold cache.)
    pub fn run(&self, g: &Dag, machine: &Arc<dyn Machine>) -> RunOutcome {
        match self.config.time_budget {
            // The watchdog needs owned inputs it can move to (and
            // leak on) a worker thread.
            Some(budget) => {
                let shared = Arc::new(g.clone());
                self.run_chain(g, machine.as_ref(), Some((&shared, machine, budget)))
            }
            None => self.run_chain(g, machine.as_ref(), None),
        }
    }

    /// One chain walk; `watchdog` carries the shared handles needed
    /// for preemptive deadline enforcement.
    fn run_chain(
        &self,
        g: &Dag,
        machine: &dyn Machine,
        watchdog: Option<(&Arc<Dag>, &Arc<dyn Machine>, Duration)>,
    ) -> RunOutcome {
        let fingerprint = GraphFingerprint::of(g);
        let mut incidents: Vec<Incident> = Vec::new();
        let mut winner: Option<(Schedule, &'static str)> = None;

        for h in &self.chain {
            let span = obs::span!("harness.attempt");
            let (result, elapsed) = match watchdog {
                Some((shared_g, shared_m, budget)) => {
                    attempt_watchdog(Arc::clone(h), shared_g, shared_m, budget, &self.config)
                }
                None => attempt_inline(h.as_ref(), g, machine, &self.config),
            };
            drop(span);
            match result {
                Ok(schedule) => {
                    winner = Some((schedule, h.name()));
                    break;
                }
                Err(fault) => {
                    obs::event("harness.incidents");
                    obs::event(fault_counter(&fault));
                    incidents.push(Incident {
                        heuristic: h.name(),
                        graph: fingerprint,
                        fault,
                        elapsed,
                        resolved_by: None,
                    });
                }
            }
        }

        if !incidents.is_empty() {
            obs::event("harness.fallbacks");
        }
        let (schedule, scheduled_by) =
            winner.unwrap_or_else(|| (serial_placement(g), SERIAL_PLACEMENT));
        for incident in &mut incidents {
            incident.resolved_by = Some(scheduled_by);
        }
        if !incidents.is_empty() {
            self.lock_log().extend(incidents.iter().cloned());
        }
        RunOutcome {
            schedule,
            scheduled_by,
            incidents,
        }
    }
}

impl Scheduler for RobustScheduler {
    /// Reports the *primary* heuristic's name so result tables keep
    /// their expected columns when wrapped.
    fn name(&self) -> &'static str {
        self.chain
            .first()
            .map(|h| h.name())
            .unwrap_or(SERIAL_PLACEMENT)
    }

    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        self.run_chain(g, machine, None).schedule
    }
}

/// One inline attempt: contain panics, then apply the (post-hoc) time
/// budget and the oracle.
fn attempt_inline(
    h: &dyn Scheduler,
    g: &Dag,
    machine: &dyn Machine,
    config: &HarnessConfig,
) -> (Result<Schedule, Fault>, Duration) {
    let start = Instant::now();
    let caught = catch_unwind(AssertUnwindSafe(|| h.schedule(g, machine)));
    let elapsed = start.elapsed();
    let result = match caught {
        Err(payload) => Err(Fault::Panic(panic_message(payload.as_ref()))),
        Ok(schedule) => {
            if let Some(budget) = config.time_budget.filter(|&b| elapsed > b) {
                Err(Fault::DeadlineExceeded { budget })
            } else {
                gate(schedule, g, machine, config)
            }
        }
    };
    (result, elapsed)
}

/// One watchdog attempt: the heuristic runs on a worker thread; if it
/// neither returns nor panics within `budget`, the thread is
/// abandoned (its eventual result is discarded) and the attempt
/// resolves to [`Fault::DeadlineExceeded`].
fn attempt_watchdog(
    h: Arc<dyn Scheduler>,
    g: &Arc<Dag>,
    machine: &Arc<dyn Machine>,
    budget: Duration,
    config: &HarnessConfig,
) -> (Result<Schedule, Fault>, Duration) {
    let start = Instant::now();
    let (tx, rx) = mpsc::channel();
    let worker_g = Arc::clone(g);
    let worker_m = Arc::clone(machine);
    let worker_h = Arc::clone(&h);
    let spawned = std::thread::Builder::new()
        .name(format!("harness-{}", h.name()))
        .spawn(move || {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                worker_h.schedule(&worker_g, worker_m.as_ref())
            }));
            // The receiver is gone iff the watchdog already gave up
            // on us; the result is then intentionally discarded.
            let _ = tx.send(caught);
        });

    let handle = match spawned {
        Ok(handle) => handle,
        // No threads available: degrade to the inline (post-hoc
        // budget) path rather than failing the attempt outright.
        Err(_) => return attempt_inline(h.as_ref(), g.as_ref(), machine.as_ref(), config),
    };

    match rx.recv_timeout(budget) {
        Ok(caught) => {
            let _ = handle.join();
            let elapsed = start.elapsed();
            let result = match caught {
                Err(payload) => Err(Fault::Panic(panic_message(payload.as_ref()))),
                Ok(schedule) => gate(schedule, g, machine.as_ref(), config),
            };
            (result, elapsed)
        }
        Err(_) => {
            // Deadline (or a worker lost without sending — treat the
            // same). Dropping `handle` detaches the worker.
            drop(handle);
            (Err(Fault::DeadlineExceeded { budget }), start.elapsed())
        }
    }
}

/// Metric name for a contained fault, keyed by [`Fault::kind`].
fn fault_counter(fault: &Fault) -> &'static str {
    match fault {
        Fault::Panic(_) => "harness.panics",
        Fault::Invalid(_) => "harness.invalid_schedules",
        Fault::DeadlineExceeded { .. } => "harness.deadlines_exceeded",
    }
}

/// Oracle gate: a produced schedule must satisfy the independent
/// validator (when enabled) to count as success.
fn gate(
    schedule: Schedule,
    g: &Dag,
    machine: &dyn Machine,
    config: &HarnessConfig,
) -> Result<Schedule, Fault> {
    if config.validate {
        let violations = validate::check(g, machine, &schedule);
        if !violations.is_empty() {
            return Err(Fault::Invalid(violations));
        }
    }
    Ok(schedule)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The terminal degradation: every task back-to-back on one
/// processor, in topological order. Uses one processor and zero
/// communication, so it is valid on every machine and cannot fail —
/// the guarantee that lets [`RobustScheduler::run`] be total.
pub fn serial_placement(g: &Dag) -> Schedule {
    let mut placements = vec![(ProcId(0), 0); g.num_nodes()];
    let mut clock = 0;
    for &v in g.topo_order() {
        placements[v.index()] = (ProcId(0), clock);
        clock += g.node_weight(v);
    }
    Schedule::new(g, placements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{InvalidScheduler, PanicScheduler, SleepyScheduler};
    use dagsched_core::fixtures::fig16;
    use dagsched_dag::DagBuilder;
    use dagsched_sim::{BoundedClique, Clique};

    fn clique() -> Arc<dyn Machine> {
        Arc::new(Clique)
    }

    #[test]
    fn clean_run_passes_through_without_incidents() {
        let g = fig16();
        let robust = RobustScheduler::wrap(Hu);
        let out = robust.run(&g, &clique());
        assert_eq!(out.scheduled_by, "HU");
        assert!(!out.fell_back());
        assert!(out.incidents.is_empty());
        assert!(validate::is_valid(&g, &Clique, &out.schedule));
        // The wrapper is transparent for registry code.
        assert_eq!(robust.name(), "HU");
        assert_eq!(out.schedule.makespan(), Hu.schedule(&g, &Clique).makespan());
    }

    #[test]
    fn panic_is_contained_and_resolved_by_fallback() {
        let g = fig16();
        let robust = RobustScheduler::wrap(PanicScheduler);
        let out = robust.run(&g, &clique());
        assert_eq!(out.scheduled_by, "HU");
        assert!(out.fell_back());
        assert_eq!(out.incidents.len(), 1);
        let incident = &out.incidents[0];
        assert_eq!(incident.heuristic, "CHAOS-PANIC");
        assert_eq!(incident.fault.kind(), "panic");
        assert_eq!(incident.resolved_by, Some("HU"));
        assert!(validate::is_valid(&g, &Clique, &out.schedule));
        // The internal log saw the same incident.
        assert_eq!(robust.take_incidents(), out.incidents);
        assert!(robust.take_incidents().is_empty());
    }

    #[test]
    fn invalid_schedule_is_rejected_by_the_oracle_gate() {
        let g = fig16();
        let robust = RobustScheduler::wrap(InvalidScheduler);
        let out = robust.run(&g, &clique());
        assert_eq!(out.scheduled_by, "HU");
        assert_eq!(out.incidents.len(), 1);
        assert_eq!(out.incidents[0].fault.kind(), "invalid-schedule");
        assert!(validate::is_valid(&g, &Clique, &out.schedule));
    }

    #[test]
    fn without_validation_accepts_what_the_oracle_would_reject() {
        let g = fig16();
        let robust = RobustScheduler::wrap(InvalidScheduler).without_validation();
        let out = robust.run(&g, &clique());
        assert_eq!(out.scheduled_by, "CHAOS-INVALID");
        assert!(out.incidents.is_empty());
    }

    #[test]
    fn watchdog_abandons_a_heuristic_that_blows_its_budget() {
        let g = fig16();
        let robust = RobustScheduler::bare(Arc::new(SleepyScheduler {
            delay: Duration::from_secs(5),
        }))
        .push_fallback(Arc::new(Serial))
        .with_time_budget(Duration::from_millis(25));
        let start = Instant::now();
        let out = robust.run(&g, &clique());
        // Abandonment, not a join: the run returns long before the
        // sleeper wakes.
        assert!(start.elapsed() < Duration::from_secs(4));
        assert_eq!(out.scheduled_by, "SERIAL");
        assert_eq!(out.incidents.len(), 1);
        assert_eq!(out.incidents[0].fault.kind(), "deadline-exceeded");
        assert!(validate::is_valid(&g, &Clique, &out.schedule));
    }

    #[test]
    fn inline_entry_point_applies_the_budget_post_hoc() {
        let g = fig16();
        let robust = RobustScheduler::wrap(SleepyScheduler {
            delay: Duration::from_millis(60),
        })
        .with_time_budget(Duration::from_millis(5));
        // Scheduler-trait entry point: borrowed machine, inline run.
        let s = robust.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
        let incidents = robust.take_incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].fault.kind(), "deadline-exceeded");
        assert_eq!(incidents[0].resolved_by, Some("HU"));
    }

    #[test]
    fn exhausted_chain_degrades_to_serial_placement() {
        let g = fig16();
        let robust = RobustScheduler::bare(Arc::new(PanicScheduler));
        let out = robust.run(&g, &clique());
        assert_eq!(out.scheduled_by, SERIAL_PLACEMENT);
        assert_eq!(out.incidents.len(), 1);
        assert_eq!(out.incidents[0].resolved_by, Some(SERIAL_PLACEMENT));
        assert!(validate::is_valid(&g, &Clique, &out.schedule));
        assert_eq!(out.schedule.makespan(), g.serial_time());
    }

    #[test]
    fn default_chain_skips_duplicate_tail_entries() {
        assert_eq!(
            RobustScheduler::wrap(PanicScheduler).chain_names(),
            vec!["CHAOS-PANIC", "HU", "SERIAL"]
        );
        assert_eq!(
            RobustScheduler::wrap(Hu).chain_names(),
            vec!["HU", "SERIAL"]
        );
        assert_eq!(
            RobustScheduler::wrap(Serial).chain_names(),
            vec!["SERIAL", "HU"]
        );
    }

    #[test]
    fn serial_placement_is_valid_everywhere() {
        let machines: Vec<Box<dyn Machine>> = vec![
            Box::new(Clique),
            Box::new(BoundedClique::new(1)),
            Box::new(dagsched_sim::Ring::new(3)),
        ];
        let mut b = DagBuilder::new();
        let a = b.add_node(0);
        let c = b.add_node(4);
        let d = b.add_node(0);
        b.add_edge(a, c, 100).unwrap();
        b.add_edge(c, d, 100).unwrap();
        let graphs = vec![
            fig16(),
            b.build().unwrap(),
            DagBuilder::new().build().unwrap(),
        ];
        for g in &graphs {
            let s = serial_placement(g);
            for m in &machines {
                assert!(
                    validate::check(g, m.as_ref(), &s).is_empty(),
                    "n={} on {}",
                    g.num_nodes(),
                    m.name()
                );
            }
        }
    }

    #[test]
    fn serial_placement_reports_unit_speedup_and_efficiency() {
        // The last-resort fallback uses exactly one processor and no
        // idle gaps, so its measures are speedup = efficiency = 1.0 —
        // the convention §4 expects for serial schedules.
        let mut b = DagBuilder::new();
        let a = b.add_node(30);
        let c = b.add_node(70);
        b.add_edge(a, c, 500).unwrap();
        for g in [fig16(), b.build().unwrap()] {
            let s = serial_placement(&g);
            let m = dagsched_sim::metrics::measures(&g, &s);
            assert_eq!(m.procs, 1);
            assert_eq!(m.parallel_time, g.serial_time());
            assert_eq!(m.speedup, 1.0);
            assert_eq!(m.efficiency, 1.0);
        }
    }

    #[test]
    #[cfg(feature = "obs")]
    fn contained_faults_are_recorded_as_metrics() {
        let g = fig16();
        let scope = dagsched_obs::run_scope();
        let robust = RobustScheduler::wrap(PanicScheduler);
        robust.run(&g, &clique());
        let stats = scope.finish();
        assert_eq!(stats.counter("harness.incidents"), 1);
        assert_eq!(stats.counter("harness.panics"), 1);
        assert_eq!(stats.counter("harness.fallbacks"), 1);
        // One attempt per chain entry walked: the panicker, then HU.
        assert_eq!(stats.span("harness.attempt").map(|s| s.calls), Some(2));

        // A clean run records the attempt span but no fault counters.
        let scope = dagsched_obs::run_scope();
        RobustScheduler::wrap(Hu).run(&g, &clique());
        let stats = scope.finish();
        assert_eq!(stats.counter("harness.incidents"), 0);
        assert_eq!(stats.counter("harness.fallbacks"), 0);
        assert_eq!(stats.span("harness.attempt").map(|s| s.calls), Some(1));

        // The oracle gate's rejection shows up under its own kind.
        let scope = dagsched_obs::run_scope();
        RobustScheduler::wrap(InvalidScheduler).run(&g, &clique());
        let stats = scope.finish();
        assert_eq!(stats.counter("harness.invalid_schedules"), 1);
    }

    #[test]
    fn outcomes_are_deterministic_across_runs() {
        let g = fig16();
        let run = || {
            let robust = RobustScheduler::wrap(PanicScheduler);
            let out = robust.run(&g, &clique());
            (
                out.scheduled_by,
                out.schedule.makespan(),
                out.incidents
                    .iter()
                    .map(Incident::summary)
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }
}
