//! Bounded retry with deterministic jittered backoff and per-attempt
//! deadline escalation.
//!
//! The crash-safe sweep engine retries a graph whose evaluation
//! panicked or blew its budget before giving up and quarantining it.
//! The policy here is fully deterministic given a seed: two runs of
//! the same seeded corpus produce the same attempt counts, the same
//! backoff durations and the same escalated deadlines, which keeps
//! resumed sweeps byte-identical to uninterrupted ones.
//!
//! * **bounded attempts** — [`RetryPolicy::max_attempts`] caps how
//!   often one item is tried (first attempt included);
//! * **jittered backoff** — before retry `k` the caller sleeps
//!   [`RetryPolicy::backoff`]`(k, seed)`: exponential from
//!   [`RetryPolicy::base_backoff`], capped at
//!   [`RetryPolicy::max_backoff`], plus a deterministic jitter
//!   fraction derived from the seed (never a global RNG);
//! * **deadline escalation** — [`RetryPolicy::escalated_budget`]
//!   multiplies the base per-attempt time budget by
//!   [`RetryPolicy::deadline_factor`] per retry, so a graph that
//!   merely needed more time gets it before being written off.
//!
//! [`run_with_retry`] drives the loop and hands back either the first
//! success or the full error chain for quarantine.

use std::time::Duration;

/// Containment policy for retrying one work item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per item, first one included (>= 1; 0 is
    /// treated as 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Multiplier applied to the backoff per further retry.
    pub backoff_factor: u32,
    /// Ceiling for the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Jitter as a fraction of the backoff added on top, in `0..=1`;
    /// the actual fraction is drawn deterministically from the seed.
    pub jitter: f64,
    /// Multiplier applied to the per-attempt time budget per retry.
    pub deadline_factor: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(25),
            backoff_factor: 2,
            max_backoff: Duration::from_secs(2),
            jitter: 0.25,
            deadline_factor: 2,
        }
    }
}

/// SplitMix64: the one-shot mixer used everywhere the workspace needs
/// a deterministic stream from a seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// The effective attempt cap (at least 1).
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// The backoff to sleep before retry `retry` (1-based: `1` is the
    /// pause between the first and second attempt). Deterministic
    /// given `seed`: exponential-with-cap plus a seeded jitter
    /// fraction.
    pub fn backoff(&self, retry: u32, seed: u64) -> Duration {
        let mut d = self.base_backoff.min(self.max_backoff);
        for _ in 1..retry {
            d = d
                .checked_mul(self.backoff_factor.max(1))
                .unwrap_or(self.max_backoff)
                .min(self.max_backoff);
        }
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return d;
        }
        let roll = splitmix64(seed ^ u64::from(retry)) as f64 / u64::MAX as f64;
        let extra = d.as_secs_f64() * jitter * roll;
        d + Duration::from_secs_f64(extra)
    }

    /// The per-attempt time budget for `attempt` (1-based), escalated
    /// from `base` by [`RetryPolicy::deadline_factor`] per retry.
    /// `None` stays `None` (no deadline).
    pub fn escalated_budget(&self, base: Option<Duration>, attempt: u32) -> Option<Duration> {
        let base = base?;
        let mut budget = base;
        for _ in 1..attempt {
            budget = budget
                .checked_mul(self.deadline_factor.max(1))
                .unwrap_or(budget);
        }
        Some(budget)
    }
}

/// Every attempt failed; the per-attempt errors, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryExhausted<E> {
    /// Number of attempts made.
    pub attempts: u32,
    /// One error per attempt, chronologically.
    pub errors: Vec<E>,
}

/// How one [`run_with_retry`] call went, successful or not.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryReport<T, E> {
    /// The first success, or the exhausted error chain.
    pub outcome: Result<T, RetryExhausted<E>>,
    /// Attempts actually made (>= 1).
    pub attempts: u32,
    /// Backoff pauses actually slept.
    pub backoffs: u32,
}

/// Runs `attempt_fn` under `policy`, sleeping the seeded backoff
/// between failures. The closure receives the 1-based attempt number
/// and the escalated time budget for that attempt (derived from
/// `base_budget`). Returns at the first success; otherwise collects
/// every error for the caller's quarantine record.
pub fn run_with_retry<T, E>(
    policy: &RetryPolicy,
    seed: u64,
    base_budget: Option<Duration>,
    mut attempt_fn: impl FnMut(u32, Option<Duration>) -> Result<T, E>,
) -> RetryReport<T, E> {
    let max = policy.attempts();
    let mut errors = Vec::new();
    let mut backoffs = 0;
    for attempt in 1..=max {
        let budget = policy.escalated_budget(base_budget, attempt);
        match attempt_fn(attempt, budget) {
            Ok(value) => {
                return RetryReport {
                    outcome: Ok(value),
                    attempts: attempt,
                    backoffs,
                }
            }
            Err(e) => {
                errors.push(e);
                if attempt < max {
                    let pause = policy.backoff(attempt, seed);
                    if pause > Duration::ZERO {
                        std::thread::sleep(pause);
                    }
                    backoffs += 1;
                }
            }
        }
    }
    RetryReport {
        outcome: Err(RetryExhausted {
            attempts: max,
            errors,
        }),
        attempts: max,
        backoffs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn succeeds_first_try_without_backoff() {
        let report = run_with_retry(&fast(), 7, None, |attempt, budget| {
            assert_eq!(attempt, 1);
            assert_eq!(budget, None);
            Ok::<_, String>(42)
        });
        assert_eq!(report.outcome, Ok(42));
        assert_eq!(report.attempts, 1);
        assert_eq!(report.backoffs, 0);
    }

    #[test]
    fn retries_until_success() {
        let mut calls = 0;
        let report = run_with_retry(&fast(), 7, None, |attempt, _| {
            calls += 1;
            if attempt < 3 {
                Err(format!("fail {attempt}"))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(calls, 3);
        assert_eq!(report.outcome, Ok(3));
        assert_eq!(report.attempts, 3);
        assert_eq!(report.backoffs, 2);
    }

    #[test]
    fn exhaustion_collects_every_error_in_order() {
        let report = run_with_retry(&fast(), 7, None, |attempt, _| {
            Err::<(), _>(format!("fail {attempt}"))
        });
        let exhausted = report.outcome.unwrap_err();
        assert_eq!(exhausted.attempts, 3);
        assert_eq!(exhausted.errors, vec!["fail 1", "fail 2", "fail 3"]);
        assert_eq!(report.backoffs, 2);
    }

    #[test]
    fn backoff_is_deterministic_given_seed_and_bounded() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            backoff_factor: 2,
            max_backoff: Duration::from_millis(35),
            jitter: 0.5,
            ..Default::default()
        };
        for retry in 1..=5 {
            let a = p.backoff(retry, 1234);
            let b = p.backoff(retry, 1234);
            assert_eq!(a, b, "retry {retry} deterministic");
            // Pre-jitter value is min(10 * 2^(retry-1), 35); jitter
            // adds at most 50% on top.
            let base = Duration::from_millis(10 * 2u64.pow(retry - 1)).min(p.max_backoff);
            assert!(a >= base, "retry {retry}");
            assert!(a <= base + base.mul_f64(0.5), "retry {retry}");
        }
        // Different seeds jitter differently (for at least one step).
        let varied = (1..=5).any(|r| p.backoff(r, 1) != p.backoff(r, 2));
        assert!(varied, "jitter should depend on the seed");
    }

    #[test]
    fn zero_jitter_is_pure_exponential_with_cap() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            backoff_factor: 3,
            max_backoff: Duration::from_millis(50),
            jitter: 0.0,
            ..Default::default()
        };
        assert_eq!(p.backoff(1, 99), Duration::from_millis(10));
        assert_eq!(p.backoff(2, 99), Duration::from_millis(30));
        assert_eq!(p.backoff(3, 99), Duration::from_millis(50));
        assert_eq!(p.backoff(9, 99), Duration::from_millis(50));
    }

    #[test]
    fn deadlines_escalate_per_attempt() {
        let p = RetryPolicy {
            deadline_factor: 2,
            ..Default::default()
        };
        let base = Some(Duration::from_millis(100));
        assert_eq!(
            p.escalated_budget(base, 1),
            Some(Duration::from_millis(100))
        );
        assert_eq!(
            p.escalated_budget(base, 2),
            Some(Duration::from_millis(200))
        );
        assert_eq!(
            p.escalated_budget(base, 3),
            Some(Duration::from_millis(400))
        );
        assert_eq!(p.escalated_budget(None, 3), None);
    }

    #[test]
    fn none_policy_makes_exactly_one_attempt() {
        let mut calls = 0;
        let report = run_with_retry(&RetryPolicy::none(), 0, None, |_, _| {
            calls += 1;
            Err::<(), _>("no")
        });
        assert_eq!(calls, 1);
        assert_eq!(report.attempts, 1);
        assert!(report.outcome.is_err());
    }

    #[test]
    fn zero_max_attempts_is_treated_as_one() {
        let p = RetryPolicy {
            max_attempts: 0,
            ..fast()
        };
        let report = run_with_retry(&p, 0, None, |_, _| Ok::<_, ()>(1));
        assert_eq!(report.attempts, 1);
    }
}
