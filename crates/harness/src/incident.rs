//! Structured records of contained faults.

use dagsched_dag::{Dag, Weight};
use dagsched_sim::validate::Violation;
use std::fmt;
use std::time::Duration;

/// A compact, content-derived identity for a graph.
///
/// Corpus graphs are generated, not named, so incidents identify the
/// offending input by shape summary plus an order-sensitive FNV-1a
/// digest over node weights and edge triples. Two structurally equal
/// graphs always fingerprint identically, which keeps incident
/// reports byte-stable across reruns of a seeded corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraphFingerprint {
    /// Number of tasks.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Sum of node weights (the serial time).
    pub serial_time: Weight,
    /// Sum of edge weights.
    pub total_comm: Weight,
    /// FNV-1a digest of weights and edge triples.
    pub digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(FNV_PRIME)
}

impl GraphFingerprint {
    /// Fingerprints `g`.
    pub fn of(g: &Dag) -> Self {
        let mut h = fnv(FNV_OFFSET, g.num_nodes() as u64);
        for &w in g.node_weights() {
            h = fnv(h, w);
        }
        let mut total_comm: Weight = 0;
        for e in g.edges() {
            h = fnv(h, e.src.0 as u64);
            h = fnv(h, e.dst.0 as u64);
            h = fnv(h, e.weight);
            total_comm += e.weight;
        }
        GraphFingerprint {
            nodes: g.num_nodes(),
            edges: g.num_edges(),
            serial_time: g.serial_time(),
            total_comm,
            digest: h,
        }
    }
}

impl fmt::Display for GraphFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph[n={} m={} w={} c={} #{:016x}]",
            self.nodes, self.edges, self.serial_time, self.total_comm, self.digest
        )
    }
}

/// What went wrong in one scheduling attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The heuristic panicked; the payload message, if it was a
    /// string, is preserved.
    Panic(String),
    /// The heuristic returned a schedule the oracle rejected.
    Invalid(Vec<Violation>),
    /// The heuristic did not finish within the wall-clock budget.
    DeadlineExceeded {
        /// The configured budget that was exceeded.
        budget: Duration,
    },
}

impl Fault {
    /// A stable lowercase tag for aggregation (`"panic"`,
    /// `"invalid-schedule"`, `"deadline-exceeded"`).
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::Panic(_) => "panic",
            Fault::Invalid(_) => "invalid-schedule",
            Fault::DeadlineExceeded { .. } => "deadline-exceeded",
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Panic(msg) => write!(f, "panicked: {msg}"),
            Fault::Invalid(violations) => match violations.first() {
                Some(first) => write!(
                    f,
                    "invalid schedule ({} violation{}, first: {first})",
                    violations.len(),
                    if violations.len() == 1 { "" } else { "s" },
                ),
                None => write!(f, "invalid schedule"),
            },
            Fault::DeadlineExceeded { budget } => {
                write!(f, "exceeded time budget of {budget:?}")
            }
        }
    }
}

/// One containment event: a heuristic faulted on a graph and the
/// harness absorbed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// Name of the heuristic that faulted.
    pub heuristic: &'static str,
    /// Fingerprint of the input graph.
    pub graph: GraphFingerprint,
    /// The contained fault.
    pub fault: Fault,
    /// Wall-clock time spent in the faulting attempt. Excluded from
    /// [`Incident::summary`] so reports stay deterministic.
    pub elapsed: Duration,
    /// Name of the chain entry that ultimately completed the run
    /// (`None` while the run is still walking the chain).
    pub resolved_by: Option<&'static str>,
}

impl Incident {
    /// A deterministic one-line description: everything except the
    /// measured `elapsed` time, so two identically-seeded runs render
    /// byte-identical summaries.
    pub fn summary(&self) -> String {
        match self.resolved_by {
            Some(by) => format!(
                "{} on {}: {} -> completed by {}",
                self.heuristic, self.graph, self.fault, by
            ),
            None => format!("{} on {}: {}", self.heuristic, self.graph, self.fault),
        }
    }
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (after {:?})", self.summary(), self.elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_dag::DagBuilder;
    use dagsched_dag::NodeId;
    use dagsched_sim::validate::Violation;

    fn diamond() -> Dag {
        let mut b = DagBuilder::new();
        let a = b.add_node(2);
        let c = b.add_node(3);
        let d = b.add_node(5);
        b.add_edge(a, c, 7).unwrap();
        b.add_edge(a, d, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic_and_shape_aware() {
        let g = diamond();
        let f1 = GraphFingerprint::of(&g);
        let f2 = GraphFingerprint::of(&g.clone());
        assert_eq!(f1, f2);
        assert_eq!(f1.nodes, 3);
        assert_eq!(f1.edges, 2);
        assert_eq!(f1.serial_time, 10);
        assert_eq!(f1.total_comm, 8);

        // Shuffling weight between edges keeps the shape summary but
        // must change the digest.
        let mut b = DagBuilder::new();
        let a = b.add_node(2);
        let c = b.add_node(3);
        let d = b.add_node(5);
        b.add_edge(a, c, 6).unwrap();
        b.add_edge(a, d, 2).unwrap();
        let g2 = b.build().unwrap();
        let f3 = GraphFingerprint::of(&g2);
        assert_eq!(f3.nodes, f1.nodes);
        assert_eq!(f3.total_comm, f1.total_comm);
        assert_ne!(f3.digest, f1.digest);
    }

    #[test]
    fn fault_kinds_and_display() {
        let p = Fault::Panic("boom".into());
        assert_eq!(p.kind(), "panic");
        assert_eq!(p.to_string(), "panicked: boom");

        let i = Fault::Invalid(vec![Violation::Overlap {
            a: NodeId(0),
            b: NodeId(1),
        }]);
        assert_eq!(i.kind(), "invalid-schedule");
        assert_eq!(
            i.to_string(),
            "invalid schedule (1 violation, first: tasks n0 and n1 overlap on a processor)"
        );

        let d = Fault::DeadlineExceeded {
            budget: Duration::from_millis(50),
        };
        assert_eq!(d.kind(), "deadline-exceeded");
        assert_eq!(d.to_string(), "exceeded time budget of 50ms");
    }

    #[test]
    fn summary_excludes_elapsed_time() {
        let inc = Incident {
            heuristic: "CLANS",
            graph: GraphFingerprint::of(&diamond()),
            fault: Fault::Panic("x".into()),
            elapsed: Duration::from_micros(123),
            resolved_by: Some("HU"),
        };
        let mut later = inc.clone();
        later.elapsed = Duration::from_secs(9);
        assert_eq!(inc.summary(), later.summary());
        assert!(inc.summary().ends_with("-> completed by HU"));
        assert!(inc.to_string().contains("123"));
    }
}
