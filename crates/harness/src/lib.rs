//! # dagsched-harness — fault isolation for schedulers
//!
//! The corpus comparison is only trustworthy if every run either
//! produces a *valid* schedule or fails loudly. This crate wraps any
//! [`Scheduler`](dagsched_core::Scheduler) in a [`RobustScheduler`]
//! that guarantees a run always completes with an oracle-valid
//! schedule, no matter how the wrapped heuristic misbehaves:
//!
//! * **panic containment** — every attempt runs under
//!   `std::panic::catch_unwind`; a panicking heuristic becomes a
//!   recorded fault, not a dead corpus run;
//! * **time budgets** — [`RobustScheduler::run`] enforces a wall-clock
//!   deadline with a watchdog: the heuristic runs on a worker thread
//!   and is *abandoned* (the thread is detached, its result discarded)
//!   when the budget expires;
//! * **oracle gating** — every schedule an attempt produces is checked
//!   by the independent oracle in `dagsched_sim::validate`; an invalid
//!   schedule is a fault exactly like a panic;
//! * **graceful degradation** — faults move the run down a fallback
//!   chain (requested heuristic → HU → serial baseline by default); if
//!   every chain entry faults, a [`serial_placement`] is synthesized
//!   directly, which is trivially valid on every machine, so a run
//!   *always* yields a schedule.
//!
//! * **bounded retry** — the [`retry`] module adds a
//!   retry-with-backoff policy on top (configurable attempts,
//!   per-attempt deadline escalation, jittered backoff — deterministic
//!   given a seed), used by the crash-safe sweep engine in
//!   `dagsched-experiments` before it quarantines a poison graph.
//!
//! Every containment event is recorded as a structured
//! [`Incident`] (heuristic name, graph fingerprint, fault, elapsed
//! time, fallback that completed the run) for aggregation into
//! robustness reports.
//!
//! ```
//! use dagsched_harness::{chaos::PanicScheduler, RobustScheduler};
//! use dagsched_core::fixtures::fig16;
//! use dagsched_sim::{Clique, Machine};
//! use std::sync::Arc;
//!
//! let machine: Arc<dyn Machine> = Arc::new(Clique);
//! let robust = RobustScheduler::wrap(PanicScheduler);
//! let out = robust.run(&fig16(), &machine);
//! assert_eq!(out.incidents.len(), 1);          // the panic, contained
//! assert_eq!(out.scheduled_by, "HU");          // first fallback won
//! ```
//!
//! Caveats: containment relies on unwinding, so it does not apply
//! under `panic = "abort"` builds, and a heuristic abandoned by the
//! watchdog keeps running (detached) until it finishes on its own —
//! the harness bounds *latency*, not CPU use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod incident;
pub mod retry;
pub mod robust;

pub use incident::{Fault, GraphFingerprint, Incident};
pub use retry::{run_with_retry, RetryExhausted, RetryPolicy, RetryReport};
pub use robust::{serial_placement, HarnessConfig, RobustScheduler, RunOutcome, SERIAL_PLACEMENT};
