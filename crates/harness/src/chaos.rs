//! Deliberately faulty schedulers for exercising the harness.
//!
//! These are *test fixtures shipped as library code* so the torture
//! suite, the determinism guard and the examples can all force every
//! containment path (panic, invalid schedule, deadline) without
//! duplicating throwaway scheduler impls.

use crate::robust::serial_placement;
use dagsched_core::Scheduler;
use dagsched_dag::Dag;
use dagsched_sim::{Machine, ProcId, Schedule};
use std::time::Duration;

/// Panics on every call.
#[derive(Debug, Clone, Copy, Default)]
pub struct PanicScheduler;

impl Scheduler for PanicScheduler {
    fn name(&self) -> &'static str {
        "CHAOS-PANIC"
    }

    fn schedule(&self, _g: &Dag, _machine: &dyn Machine) -> Schedule {
        panic!("chaos: deliberate panic from CHAOS-PANIC")
    }
}

/// Returns a blatantly invalid schedule: every task on processor 0 at
/// time 0 (overlapping whenever the graph has ≥ 2 tasks with nonzero
/// weight, and violating precedence whenever it has an edge with a
/// nonzero-weight source).
#[derive(Debug, Clone, Copy, Default)]
pub struct InvalidScheduler;

impl Scheduler for InvalidScheduler {
    fn name(&self) -> &'static str {
        "CHAOS-INVALID"
    }

    fn schedule(&self, g: &Dag, _machine: &dyn Machine) -> Schedule {
        Schedule::new(g, vec![(ProcId(0), 0); g.num_nodes()])
    }
}

/// Sleeps for a fixed delay, then answers with a correct (serial)
/// schedule — the well-behaved-but-slow case for deadline tests.
#[derive(Debug, Clone, Copy)]
pub struct SleepyScheduler {
    /// How long to stall before scheduling.
    pub delay: Duration,
}

impl Scheduler for SleepyScheduler {
    fn name(&self) -> &'static str {
        "CHAOS-SLEEPY"
    }

    fn schedule(&self, g: &Dag, _machine: &dyn Machine) -> Schedule {
        std::thread::sleep(self.delay);
        serial_placement(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::fixtures::fig16;
    use dagsched_sim::{validate, Clique};

    #[test]
    fn invalid_scheduler_really_is_invalid() {
        let g = fig16();
        let s = InvalidScheduler.schedule(&g, &Clique);
        assert!(!validate::is_valid(&g, &Clique, &s));
    }

    #[test]
    fn sleepy_scheduler_is_slow_but_correct() {
        let g = fig16();
        let s = SleepyScheduler {
            delay: Duration::from_millis(1),
        }
        .schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &s));
    }

    #[test]
    #[should_panic(expected = "chaos")]
    fn panic_scheduler_panics() {
        PanicScheduler.schedule(&fig16(), &Clique);
    }
}
