//! Regression lock on the appendix worked example: every scheduler's
//! makespan on the paper's Figure 16 graph is pinned. If an algorithm
//! change moves one of these numbers, that is a deliberate behavioral
//! change and this file must be updated alongside EXPERIMENTS.md.

use dagsched::core::fixtures::fig16;
use dagsched::core::{all_heuristics, BandSelector, BestOf, Dsh, Scheduler};
use dagsched::sim::Clique;

#[test]
fn every_scheduler_makespan_on_fig16_is_pinned() {
    let g = fig16();
    let expected = [
        ("CLANS", 130),
        ("DSC", 130),
        ("MCP", 130),
        ("MH", 130),
        ("HU", 135),
        ("ETF", 130),
        ("HLFET", 130),
        ("DLS", 130),
        ("LC", 130),
        ("SARKAR", 135),
        ("SERIAL", 150),
    ];
    let mut seen = std::collections::HashMap::new();
    for h in all_heuristics() {
        seen.insert(h.name(), h.schedule(&g, &Clique).makespan());
    }
    for (name, want) in expected {
        assert_eq!(
            seen.get(name),
            Some(&want),
            "{name}: expected makespan {want}, got {:?}",
            seen.get(name)
        );
    }
    assert_eq!(seen.len(), expected.len(), "scheduler registry changed");
}

#[test]
fn meta_and_duplication_on_fig16_are_pinned() {
    let g = fig16();
    assert_eq!(
        BandSelector::default().schedule(&g, &Clique).makespan(),
        130
    );
    assert_eq!(BestOf::paper().schedule(&g, &Clique).makespan(), 130);
    // Duplication cannot improve fig16's best (the fork is too light
    // to benefit), and must not regress it.
    let dup = Dsh.schedule(&g, &Clique);
    assert!(dup.check(&g, &Clique).is_empty());
    assert!(dup.makespan() <= 150);
}

#[test]
fn hu_and_sarkar_agree_on_the_cluster_but_not_the_path() {
    // Both land on 135 via the {0,1} | {2,3,4} split — a coincidence
    // worth pinning because it documents why Table 2/3 still separate
    // them on the corpus (their decisions differ on wider graphs).
    let g = fig16();
    let hu = dagsched::core::Hu.schedule(&g, &Clique);
    let sarkar = dagsched::core::Sarkar.schedule(&g, &Clique);
    assert_eq!(hu.makespan(), sarkar.makespan());
}

#[test]
fn corpus_weight_range_defaults_follow_section_3_3() {
    // §3.3 draws node weights from 20–100 / 20–200 / 20–400; Table 1's
    // conflicting 10–x listing stays a documented, explicit opt-in.
    use dagsched::experiments::corpus::CorpusSpec;
    use dagsched::gen::WeightRange;
    let spec = CorpusSpec::default();
    assert_eq!(spec.weight_ranges, WeightRange::PAPER);
    assert_eq!(WeightRange::PAPER[0], WeightRange::new(20, 100));
    assert_eq!(WeightRange::PAPER[1], WeightRange::new(20, 200));
    assert_eq!(WeightRange::PAPER[2], WeightRange::new(20, 400));
    assert_ne!(WeightRange::TABLE1, WeightRange::PAPER);
    assert_eq!(WeightRange::TABLE1[0], WeightRange::new(10, 100));
    assert_eq!(WeightRange::TABLE1[2], WeightRange::new(10, 300));
}
