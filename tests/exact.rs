//! Brute-force-vs-branch-and-bound differential suite.
//!
//! The exact solver's whole value is its certificate, so it gets the
//! adversarial treatment: on an exhaustive corpus of small DAG
//! topologies (every edge set over 4 nodes, two weight profiles), a
//! deterministically sampled set of 5–8-node graphs, and the torture
//! corpus filtered to the brute-force range, the branch-and-bound
//! makespan must be bit-identical to an independent brute-force
//! enumerator that shares no code with the search — and every
//! registered heuristic must come in at or above the proven optimum.
//! Parallel and serial searches must agree, and a starved budget must
//! still return a valid incumbent with an honest `proven = false`.

use dagsched::core::all_heuristics;
use dagsched::dag::{Dag, DagBuilder, Weight};
use dagsched::exact::brute::{optimal_makespan, MAX_BRUTE_NODES};
use dagsched::exact::{solve, ExactConfig};
use dagsched::gen::torture_corpus;
use dagsched::sim::{validate, BoundedClique, Clique, Machine};

fn machines() -> Vec<Box<dyn Machine>> {
    vec![
        Box::new(Clique),
        Box::new(BoundedClique::new(2)),
        Box::new(BoundedClique::new(3)),
    ]
}

/// Deterministic xorshift64 so the sampled corpus needs no RNG crate
/// and is identical on every run and platform.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Every DAG topology on `n` nodes: one graph per subset of the
/// upper-triangular edge pairs, with caller-chosen weights.
fn all_dags(
    n: usize,
    node_w: impl Fn(usize) -> Weight,
    edge_w: impl Fn(usize, usize) -> Weight,
) -> Vec<Dag> {
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .collect();
    (0u32..1 << pairs.len())
        .map(|mask| {
            let mut b = DagBuilder::new();
            let ids: Vec<_> = (0..n).map(|i| b.add_node(node_w(i))).collect();
            for (k, &(i, j)) in pairs.iter().enumerate() {
                if mask >> k & 1 == 1 {
                    b.add_edge(ids[i], ids[j], edge_w(i, j)).unwrap();
                }
            }
            b.build().unwrap()
        })
        .collect()
}

/// The lock itself: B&B == brute force bit-for-bit, the schedule is
/// oracle-valid, the certificate is granted (these machines are all
/// symmetric and the budget is generous), and no heuristic beats it.
fn lock(g: &Dag, machine: &dyn Machine, tag: &str) {
    assert!(
        g.num_nodes() <= MAX_BRUTE_NODES,
        "{tag}: out of brute range"
    );
    let r = solve(g, machine, &ExactConfig::deterministic(50_000_000)).unwrap();
    assert!(
        validate::check(g, machine, &r.schedule).is_empty(),
        "{tag}: invalid exact schedule"
    );
    assert!(r.proven, "{tag}: certificate withheld");
    assert_eq!(r.lower_bound, r.makespan, "{tag}: proven yet bracketed");
    assert!(!r.cutoff, "{tag}: budget should be generous");
    let brute = optimal_makespan(g, machine);
    assert_eq!(r.makespan, brute, "{tag}: B&B disagrees with brute force");
    for h in all_heuristics() {
        let mk = h.schedule(g, machine).makespan();
        assert!(
            mk >= r.makespan,
            "{tag}: {} produced {mk} below the proven optimum {}",
            h.name(),
            r.makespan
        );
    }
}

#[test]
fn every_four_node_topology_locks_to_brute_force() {
    // 64 topologies x 2 weight profiles x 3 machines. The second
    // profile inverts the compute/communication balance so both the
    // "spread out" and "stay serial" regimes are covered, and its
    // zero-weight first node exercises the zero-work edge cases.
    let balanced = all_dags(4, |i| (i as Weight + 1) * 10, |i, j| (i + j) as Weight);
    let comm_heavy = all_dags(4, |i| i as Weight, |i, j| 40 + (i * j) as Weight);
    for machine in machines() {
        for (k, g) in balanced.iter().chain(comm_heavy.iter()).enumerate() {
            lock(
                g,
                machine.as_ref(),
                &format!("topo {k} on {}", machine.name()),
            );
        }
    }
}

#[test]
fn sampled_five_to_eight_node_graphs_lock_to_brute_force() {
    // Edge probability 1/2 keeps the sampled graphs constrained enough
    // for brute force; the xorshift seed makes the corpus a fixture.
    let mut rng = Rng(0x1994_0707);
    for round in 0..12u64 {
        let n = 5 + (round % 4) as usize;
        let mut b = DagBuilder::new();
        let ids: Vec<_> = (0..n)
            .map(|_| b.add_node(1 + rng.below(20) as Weight))
            .collect();
        for i in 0..n {
            for j in i + 1..n {
                if rng.below(2) == 0 {
                    b.add_edge(ids[i], ids[j], rng.below(16) as Weight).unwrap();
                }
            }
        }
        let g = b.build().unwrap();
        // Unbounded machines make brute force factorial in the width,
        // so the 7–8-node rounds stick to the bounded machines.
        let machines: Vec<Box<dyn Machine>> = if n <= 6 {
            machines()
        } else {
            vec![
                Box::new(BoundedClique::new(2)),
                Box::new(BoundedClique::new(3)),
            ]
        };
        for machine in machines {
            lock(
                &g,
                machine.as_ref(),
                &format!("sample {round} ({n} nodes) on {}", machine.name()),
            );
        }
    }
}

#[test]
fn torture_graphs_in_brute_range_lock_to_brute_force() {
    let mut hit = 0;
    for case in torture_corpus() {
        if case.graph.num_nodes() > MAX_BRUTE_NODES {
            continue;
        }
        hit += 1;
        for machine in machines() {
            lock(
                &case.graph,
                machine.as_ref(),
                &format!("torture {}", case.name),
            );
        }
    }
    assert!(hit >= 4, "torture corpus lost its small cases ({hit})");
}

#[test]
fn parallel_and_serial_searches_return_the_same_optimum() {
    let mut rng = Rng(0xdecade);
    for round in 0..4u64 {
        let n = 6 + (round % 3) as usize;
        let mut b = DagBuilder::new();
        let ids: Vec<_> = (0..n)
            .map(|_| b.add_node(1 + rng.below(30) as Weight))
            .collect();
        for i in 0..n {
            for j in i + 1..n {
                if rng.below(3) > 0 {
                    b.add_edge(ids[i], ids[j], rng.below(10) as Weight).unwrap();
                }
            }
        }
        let g = b.build().unwrap();
        let machine = BoundedClique::new(3);
        let serial = solve(&g, &machine, &ExactConfig::deterministic(50_000_000)).unwrap();
        let parallel = solve(
            &g,
            &machine,
            &ExactConfig {
                threads: 4,
                node_budget: Some(50_000_000),
                ..ExactConfig::default()
            },
        )
        .unwrap();
        assert!(serial.proven && parallel.proven, "round {round}");
        assert_eq!(serial.makespan, parallel.makespan, "round {round}");
        assert!(validate::check(&g, &machine, &parallel.schedule).is_empty());
    }
}

#[test]
fn a_starved_budget_returns_an_honest_incumbent() {
    // The coarse fork-join's optimum (spread the middle) sits above
    // its computation-only root bound, so with one search node the
    // solver can neither prove nor exhaust: it must hand back the
    // heuristic seed, bracketed, with `proven = false`.
    let g = dagsched::core::fixtures::coarse_fork_join();
    let r = solve(&g, &Clique, &ExactConfig::deterministic(1)).unwrap();
    assert!(!r.proven);
    assert!(r.cutoff);
    assert!(r.lower_bound < r.makespan);
    assert!(validate::check(&g, &Clique, &r.schedule).is_empty());
    let best_heuristic = all_heuristics()
        .iter()
        .map(|h| h.schedule(&g, &Clique).makespan())
        .min()
        .unwrap();
    assert_eq!(r.makespan, best_heuristic, "incumbent is the seed");
}
