//! Reproducibility: the whole study must be bit-for-bit deterministic
//! given a seed, regardless of thread scheduling — the property that
//! makes `EXPERIMENTS.md` a verifiable record instead of a snapshot.

use dagsched::experiments::corpus::{generate_corpus, generate_entry, CorpusSpec};
use dagsched::experiments::runner::{run_corpus, run_corpus_robust};
use dagsched::experiments::tables::all_tables;
use dagsched::harness::chaos::PanicScheduler;
use dagsched::harness::HarnessConfig;
use dagsched_core::paper_heuristics;

fn spec() -> CorpusSpec {
    CorpusSpec {
        graphs_per_set: 2,
        nodes: 20..=35,
        ..Default::default()
    }
}

#[test]
fn corpus_generation_is_reproducible_across_runs() {
    let a = generate_corpus(&spec());
    let b = generate_corpus(&spec());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.graph, y.graph, "{:?} #{}", x.key, x.index);
        assert_eq!(x.granularity, y.granularity);
    }
}

#[test]
fn corpus_is_independent_of_parallelism() {
    // par_map with many workers vs the single-entry path.
    let corpus = generate_corpus(&spec());
    for probe in [0usize, 17, 63, corpus.len() - 1] {
        let e = &corpus[probe];
        let solo = generate_entry(&spec(), e.key, e.index);
        assert_eq!(solo.graph, e.graph);
    }
}

#[test]
fn full_study_tables_are_bit_identical_across_runs() {
    let heuristics = paper_heuristics();
    let t1 = all_tables(&run_corpus(&generate_corpus(&spec()), &heuristics));
    let t2 = all_tables(&run_corpus(&generate_corpus(&spec()), &heuristics));
    assert_eq!(t1.len(), t2.len());
    for (a, b) in t1.iter().zip(&t2) {
        assert_eq!(a, b, "table {} differs between runs", a.number);
        // Including the exact float bits (no parallel-reduction
        // nondeterminism).
        for ((_, ra), (_, rb)) in a.rows.iter().zip(&b.rows) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

#[test]
fn harnessed_runs_are_bit_identical_across_runs() {
    // Fault-isolated runs must stay as deterministic as trusting ones
    // — including when the fallback chain actually fires. A panicking
    // scheduler rides along so every graph produces one incident.
    let run = || {
        let mut heuristics = paper_heuristics();
        heuristics.push(Box::new(PanicScheduler));
        let corpus = generate_corpus(&spec());
        run_corpus_robust(&corpus, heuristics, HarnessConfig::default())
    };
    let (r1, s1) = run();
    let (r2, s2) = run();

    assert_eq!(r1.len(), r2.len());
    for (a, b) in r1.iter().zip(&r2) {
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.parallel_time, y.parallel_time);
            assert_eq!(x.procs, y.procs);
            assert_eq!(x.speedup.to_bits(), y.speedup.to_bits());
            assert_eq!(x.nrpt.to_bits(), y.nrpt.to_bits());
        }
    }
    // Fallback activations happened, and identically so.
    assert_eq!(s1.total_incidents(), generate_corpus(&spec()).len());
    assert_eq!(s1.tallies, s2.tallies);
    assert_eq!(s1.incident_summaries, s2.incident_summaries);
    assert_eq!(s1.render(), s2.render());
    // The result tables built from harnessed runs are identical too.
    assert_eq!(all_tables(&r1), all_tables(&r2));
}

#[test]
fn different_seeds_give_different_corpora_but_same_shapes() {
    let s1 = spec();
    let s2 = CorpusSpec { seed: 7, ..spec() };
    let c1 = generate_corpus(&s1);
    let c2 = generate_corpus(&s2);
    assert_eq!(c1.len(), c2.len());
    // The graphs differ...
    let same = c1
        .iter()
        .zip(&c2)
        .filter(|(a, b)| a.graph == b.graph)
        .count();
    assert!(same < c1.len() / 10, "{same} identical graphs across seeds");
    // ...but every graph still classifies into its set.
    for e in c2 {
        assert!(e.key.band.contains(e.granularity));
    }
}
