//! Machine-model integration locks.
//!
//! The refactor that threaded [`MachineModel`]/[`CostModel`] through
//! every heuristic must be invisible under the paper's own model:
//! scheduling with [`PaperUniform`] has to reproduce, bit for bit, the
//! schedules the pre-refactor code produced under the legacy `Clique`
//! machine. The committed snapshot
//! (`tests/snapshots/machine_model_uniform.snap`) was generated from
//! the pre-refactor tree over the full torture corpus plus a 100-graph
//! random sample; these tests re-derive every hash and diff against it.
//!
//! The non-uniform models are exercised end-to-end: schedules produced
//! under `bounded:4` and under a `linkaware:<file>` table must pass the
//! oracle *for that same machine* and respect its processor pool.

use dagsched::core::{all_heuristics, MachineSpec, PaperUniform};
use dagsched::dag::Dag;
use dagsched::experiments::corpus::{generate_corpus, CorpusSpec};
use dagsched::gen::torture_corpus;
use dagsched::sim::{validate, Clique, Machine, Schedule};
use std::fmt::Write as _;

const SNAPSHOT: &str = include_str!("snapshots/machine_model_uniform.snap");

fn random_sample() -> Vec<Dag> {
    let spec = CorpusSpec {
        graphs_per_set: 2,
        nodes: 12..=24,
        ..Default::default()
    };
    generate_corpus(&spec)
        .into_iter()
        .map(|e| e.graph)
        .take(100)
        .collect()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn schedule_hash(s: &Schedule) -> u64 {
    let mut bytes = Vec::with_capacity(12 * s.num_tasks() + 8);
    for (_, p) in s.iter() {
        bytes.extend_from_slice(&p.proc.0.to_le_bytes());
        bytes.extend_from_slice(&p.start.to_le_bytes());
    }
    bytes.extend_from_slice(&(s.num_procs() as u64).to_le_bytes());
    fnv1a(&bytes)
}

/// Renders the snapshot text for one machine, in the exact format the
/// pre-refactor generator used.
fn render_snapshot(machine: &dyn Machine) -> String {
    let mut text = String::new();
    for case in torture_corpus() {
        for h in all_heuristics() {
            let s = h.schedule(&case.graph, machine);
            writeln!(
                text,
                "torture/{}\t{}\t{:016x}",
                case.name,
                h.name(),
                schedule_hash(&s)
            )
            .unwrap();
        }
    }
    for (i, g) in random_sample().iter().enumerate() {
        for h in all_heuristics() {
            let s = h.schedule(g, machine);
            writeln!(text, "sample/{i}\t{}\t{:016x}", h.name(), schedule_hash(&s)).unwrap();
        }
    }
    text
}

#[test]
fn uniform_schedules_are_bit_identical_to_the_pre_refactor_snapshot() {
    let now = render_snapshot(&PaperUniform);
    let mut mismatches = Vec::new();
    for (want, got) in SNAPSHOT.lines().zip(now.lines()) {
        if want != got {
            mismatches.push(format!("snapshot: {want}\n  now:      {got}"));
        }
    }
    assert_eq!(
        SNAPSHOT.lines().count(),
        now.lines().count(),
        "snapshot line count changed — corpus or heuristic registry drifted"
    );
    assert!(
        mismatches.is_empty(),
        "{} schedule(s) changed under the paper model:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

#[test]
fn paper_uniform_and_legacy_clique_are_the_same_model() {
    // Byte-identical snapshots, not just equal makespans: the new
    // default cost model is the old machine under another name.
    assert_eq!(render_snapshot(&PaperUniform), render_snapshot(&Clique));
}

/// Validates every registry heuristic end-to-end under `machine`: the
/// schedule must satisfy the oracle *for that machine* (its comm costs,
/// its startup delay) and stay inside its processor pool.
fn assert_valid_everywhere(machine: &dyn Machine) {
    let limit = machine.max_procs();
    let sample = random_sample();
    let graphs = torture_corpus()
        .into_iter()
        .map(|c| c.graph)
        .chain(sample.into_iter().take(20));
    for g in graphs {
        for h in all_heuristics() {
            let s = h.schedule(&g, machine);
            let violations = validate::check(&g, machine, &s);
            assert!(
                violations.is_empty(),
                "{} on {} under {}: {violations:?}",
                h.name(),
                g.num_nodes(),
                machine.name()
            );
            if let Some(p) = limit {
                assert!(
                    s.num_procs() <= p,
                    "{} used {} of {} processors",
                    h.name(),
                    s.num_procs(),
                    p
                );
            }
        }
    }
}

#[test]
fn bounded_model_produces_valid_schedules_end_to_end() {
    let spec = MachineSpec::parse("bounded:4").expect("bounded spec parses");
    assert_eq!(spec.label(), "bounded:4");
    assert_valid_everywhere(spec.build().as_ref());
}

#[test]
fn linkaware_model_produces_valid_schedules_end_to_end() {
    let table = "\
# 3-processor asymmetric interconnect
procs 3
startup 2
latency
0 5 9
5 0 4
9 4 0
perunit
0 2 3
2 0 1
3 1 0
";
    let path = std::env::temp_dir().join(format!("dagsched-linkaware-{}.mach", std::process::id()));
    std::fs::write(&path, table).unwrap();
    let spec = MachineSpec::parse(&format!("linkaware:{}", path.display()))
        .expect("linkaware spec parses");
    // The label is the table's content fingerprint, not its path, so a
    // checkpoint journal stays resumable after the file moves.
    assert!(spec.label().starts_with("linkaware:"), "{}", spec.label());
    assert!(!spec.label().contains("dagsched-linkaware"));
    let machine = spec.build();
    assert_eq!(machine.max_procs(), Some(3));
    assert_eq!(machine.startup_cost(), 2);
    assert_valid_everywhere(machine.as_ref());
    std::fs::remove_file(&path).ok();
}
