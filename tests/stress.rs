//! Large-scale stress tests — `#[ignore]`d by default, run with
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```
//!
//! They verify the whole stack on graphs an order of magnitude bigger
//! than the corpus: validity, cross-checks, and the DSC/DSC-F
//! equivalence at scale.

use dagsched::core::{all_heuristics, Dsc, DscFast, Scheduler};
use dagsched::dag::Dag;
use dagsched::gen::pdg::{generate, PdgSpec};
use dagsched::gen::{GranularityBand, WeightRange};
use dagsched::sim::{event, validate, Clique};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn big_graph(nodes: usize, band: GranularityBand, seed: u64) -> Dag {
    generate(
        &PdgSpec {
            nodes,
            anchor: 4,
            weights: WeightRange::new(20, 400),
            band,
        },
        &mut StdRng::seed_from_u64(seed),
    )
    .expect("stress spec is valid")
}

#[test]
#[ignore = "release-mode stress test"]
fn all_schedulers_valid_on_500_node_graphs() {
    for band in [
        GranularityBand::VeryFine,
        GranularityBand::Medium,
        GranularityBand::VeryCoarse,
    ] {
        let g = big_graph(500, band, 1);
        for h in all_heuristics() {
            let s = h.schedule(&g, &Clique);
            assert!(
                validate::is_valid(&g, &Clique, &s),
                "{} invalid on 500-node {band:?}",
                h.name()
            );
            let r = event::simulate(&g, &Clique, &s, None);
            assert_eq!(r.makespan, s.makespan(), "{}", h.name());
        }
    }
}

#[test]
#[ignore = "release-mode stress test"]
fn fast_dsc_identical_at_scale() {
    for seed in 0..4 {
        let g = big_graph(800, GranularityBand::Medium, seed);
        assert_eq!(Dsc.schedule(&g, &Clique), DscFast.schedule(&g, &Clique));
    }
}

#[test]
#[ignore = "release-mode stress test"]
fn clan_decomposition_scales_and_verifies() {
    let g = big_graph(600, GranularityBand::Coarse, 9);
    let tree = dagsched::clans::ParseTree::decompose(&g);
    assert_eq!(tree.clan(tree.root().unwrap()).size(), 600);
    assert!(dagsched::clans::verify::check_tree(&g, &tree).is_empty());
}

#[test]
#[ignore = "release-mode stress test"]
fn duplication_valid_at_scale() {
    let g = big_graph(400, GranularityBand::Fine, 3);
    let s = dagsched::core::Dsh.schedule(&g, &Clique);
    assert!(s.check(&g, &Clique).is_empty());
    assert!(s.makespan() >= dagsched::dag::levels::critical_path_len_computation(&g));
}
