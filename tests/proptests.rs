//! Property-based tests over random weighted DAGs: the workspace's
//! strongest correctness net. Strategies build arbitrary DAGs (not
//! just series-parallel ones), then every invariant that the paper's
//! comparison rests on is checked.

use dagsched::clans::{verify, ClanKind, ParseTree};
use dagsched::core::{all_heuristics, Scheduler};
use dagsched::dag::closure::{Closure, Relation};
use dagsched::dag::{levels, metrics, topo, Dag, DagBuilder, NodeId};
use dagsched::sim::{event, metrics as smetrics, validate, Clique, Clustering};
use proptest::prelude::*;

/// An arbitrary DAG: `n` nodes with random weights; each candidate
/// edge (i < j, guaranteeing acyclicity) appears with the given
/// density and a random weight.
fn arb_dag(max_nodes: usize, max_w: u64, max_c: u64) -> impl Strategy<Value = Dag> {
    (1..=max_nodes)
        .prop_flat_map(move |n| {
            let weights = prop::collection::vec(1..=max_w, n);
            let edges = prop::collection::vec(
                ((0..n), (0..n), 1..=max_c, prop::bool::weighted(0.25)),
                0..n * 3,
            );
            (weights, edges)
        })
        .prop_map(|(weights, edges)| {
            let mut b = DagBuilder::new();
            for w in &weights {
                b.add_node(*w);
            }
            for (a, bn, c, keep) in edges {
                if !keep || a == bn {
                    continue;
                }
                let (s, d) = if a < bn { (a, bn) } else { (bn, a) };
                let _ = b.add_edge(NodeId(s as u32), NodeId(d as u32), c);
            }
            b.build().expect("forward edges cannot cycle")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_scheduler_produces_valid_schedules(g in arb_dag(28, 100, 400)) {
        let machine = Clique;
        for h in all_heuristics() {
            let s = h.schedule(&g, &machine);
            let violations = validate::check(&g, &machine, &s);
            prop_assert!(violations.is_empty(), "{}: {violations:?}", h.name());
        }
    }

    #[test]
    fn oracle_accepts_every_serial_schedule(g in arb_dag(30, 100, 500)) {
        // The SERIAL scheduler and the harness's synthesized fallback
        // placement are single-processor, topologically ordered
        // schedules — the oracle must accept both on any machine, and
        // both take exactly the serial time.
        let serial = dagsched::core::Serial.schedule(&g, &Clique);
        prop_assert!(validate::is_valid(&g, &Clique, &serial));
        prop_assert_eq!(serial.makespan(), g.serial_time());
        let placed = dagsched::harness::serial_placement(&g);
        prop_assert!(validate::is_valid(&g, &Clique, &placed));
        prop_assert_eq!(placed.makespan(), g.serial_time());
        let one_proc = dagsched::sim::BoundedClique::new(1);
        prop_assert!(validate::is_valid(&g, &one_proc, &placed));
    }

    #[test]
    fn event_sim_matches_analytic_for_every_scheduler(g in arb_dag(24, 80, 300)) {
        let machine = Clique;
        for h in all_heuristics() {
            let s = h.schedule(&g, &machine);
            let r = event::simulate(&g, &machine, &s, None);
            prop_assert_eq!(r.makespan, s.makespan(), "{}", h.name());
        }
    }

    #[test]
    fn clans_speedup_is_never_below_one(g in arb_dag(30, 100, 500)) {
        let s = dagsched::core::Clans.schedule(&g, &Clique);
        prop_assert!(s.makespan() <= g.serial_time());
    }

    #[test]
    fn dsc_never_exceeds_the_fully_parallel_bound(g in arb_dag(30, 100, 500)) {
        let s = dagsched::core::Dsc.schedule(&g, &Clique);
        prop_assert!(s.makespan() <= levels::critical_path_len(&g));
    }

    #[test]
    fn no_schedule_beats_the_computation_critical_path(g in arb_dag(24, 100, 300)) {
        let bound = levels::critical_path_len_computation(&g);
        for h in all_heuristics() {
            let s = h.schedule(&g, &Clique);
            prop_assert!(s.makespan() >= bound, "{}", h.name());
        }
    }

    #[test]
    fn fast_dsc_is_schedule_identical_to_scan_dsc(g in arb_dag(30, 100, 500)) {
        let slow = dagsched::core::Dsc.schedule(&g, &Clique);
        let fast = dagsched::core::DscFast.schedule(&g, &Clique);
        prop_assert_eq!(slow, fast);
    }

    #[test]
    fn sarkar_never_exceeds_the_fully_parallel_bound(g in arb_dag(22, 100, 400)) {
        // Sarkar accepts only non-worsening merges from singletons, so
        // it shares DSC's invariant.
        let s = dagsched::core::Sarkar.schedule(&g, &Clique);
        prop_assert!(s.makespan() <= levels::critical_path_len(&g));
        prop_assert!(validate::is_valid(&g, &Clique, &s));
    }

    #[test]
    fn quotients_contract_clans_consistently(g in arb_dag(18, 30, 30)) {
        use dagsched::clans::Quotient;
        let tree = ParseTree::decompose(&g);
        for id in tree.clan_ids() {
            let c = tree.clan(id);
            if c.kind == ClanKind::Leaf {
                continue;
            }
            let q = Quotient::of(&g, &tree, id, |ch| tree.clan(ch).size() as u64);
            prop_assert_eq!(q.graph.num_nodes(), c.children.len());
            prop_assert_eq!(q.children.len(), c.children.len());
            // Children sizes survive contraction (total preserved).
            let total: usize = q.children.iter().map(|&ch| tree.clan(ch).size()).sum();
            prop_assert_eq!(total, c.size());
            // Quotient edge count matches the distinct crossing pairs.
            let mut crossing = std::collections::HashSet::new();
            let child_of = |v: NodeId| {
                q.children
                    .iter()
                    .position(|&ch| tree.clan(ch).members.contains(v.index()))
            };
            for e in g.edges() {
                if let (Some(a), Some(b)) = (child_of(e.src), child_of(e.dst)) {
                    if a != b {
                        crossing.insert((a, b));
                    }
                }
            }
            prop_assert_eq!(q.graph.num_edges(), crossing.len());
            // Structural kinds show in the quotient: independent clans
            // contract to edgeless quotients, linear clans to total
            // orders (a Hamiltonian-path-bearing transitive DAG).
            match c.kind {
                ClanKind::Independent => prop_assert_eq!(q.graph.num_edges(), 0),
                ClanKind::Linear => {
                    let k = q.graph.num_nodes();
                    prop_assert!(q.graph.num_edges() >= k - 1);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn parse_tree_invariants_hold(g in arb_dag(22, 50, 50)) {
        let tree = ParseTree::decompose(&g);
        let violations = verify::check_tree(&g, &tree);
        prop_assert!(violations.is_empty(), "{violations:?}");
        if g.num_nodes() > 0 {
            // Leaf count equals node count; the root covers everything.
            let leaves = tree
                .clan_ids()
                .filter(|&c| tree.clan(c).kind == ClanKind::Leaf)
                .count();
            prop_assert_eq!(leaves, g.num_nodes());
            prop_assert_eq!(tree.clan(tree.root().unwrap()).size(), g.num_nodes());
        }
    }

    #[test]
    fn closure_matches_dfs_reachability(g in arb_dag(20, 10, 10)) {
        let closure = Closure::new(&g);
        // Independent DFS per node.
        for u in g.nodes() {
            let mut seen = vec![false; g.num_nodes()];
            let mut stack: Vec<NodeId> = g.succs(u).map(|(s, _)| s).collect();
            while let Some(v) = stack.pop() {
                if !std::mem::replace(&mut seen[v.index()], true) {
                    stack.extend(g.succs(v).map(|(s, _)| s));
                }
            }
            for v in g.nodes() {
                if u == v { continue; }
                prop_assert_eq!(closure.reaches(u, v), seen[v.index()]);
                let rel = closure.relation(u, v);
                match (seen[v.index()], closure.reaches(v, u)) {
                    (true, r) => { prop_assert!(!r, "cycle?"); prop_assert_eq!(rel, Relation::Ancestor); }
                    (false, true) => prop_assert_eq!(rel, Relation::Descendant),
                    (false, false) => prop_assert_eq!(rel, Relation::Unrelated),
                }
            }
        }
    }

    #[test]
    fn levels_satisfy_their_recurrences(g in arb_dag(25, 100, 100)) {
        let bl = levels::blevels_with_comm(&g);
        let tl = levels::tlevels_with_comm(&g);
        let cp = levels::critical_path_len(&g);
        for v in g.nodes() {
            let succ_best = g.succs(v).map(|(s, c)| bl[s.index()] + c).max().unwrap_or(0);
            prop_assert_eq!(bl[v.index()], g.node_weight(v) + succ_best);
            prop_assert!(tl[v.index()] + bl[v.index()] <= cp);
        }
        // The critical path realizes the bound.
        let path = levels::critical_path(&g);
        if g.num_nodes() > 0 {
            let mut sum = 0;
            for w in path.windows(2) {
                let (a, b) = (w[0], w[1]);
                let edge = g.succs(a).find(|&(s, _)| s == b).expect("path follows edges");
                sum += g.node_weight(a) + edge.1;
            }
            sum += path.last().map(|&v| g.node_weight(v)).unwrap_or(0);
            prop_assert_eq!(sum, cp);
        }
    }

    #[test]
    fn serial_clustering_equals_serial_time(g in arb_dag(25, 100, 100)) {
        let s = Clustering::serial(g.num_nodes()).materialize(&g, &Clique).unwrap();
        prop_assert_eq!(s.makespan(), g.serial_time());
        let m = smetrics::measures(&g, &s);
        if g.num_nodes() > 0 && g.serial_time() > 0 {
            prop_assert!((m.speedup - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn singleton_clustering_equals_cp_with_comm(g in arb_dag(25, 100, 100)) {
        let s = Clustering::singletons(g.num_nodes()).materialize(&g, &Clique).unwrap();
        prop_assert_eq!(s.makespan(), levels::critical_path_len(&g));
    }

    #[test]
    fn topo_utilities_are_consistent(g in arb_dag(25, 20, 20)) {
        prop_assert!(topo::is_topological(&g, g.topo_order()));
        let layers = topo::depth_layers(&g);
        for e in g.edges() {
            prop_assert!(layers[e.src.index()] < layers[e.dst.index()]);
        }
        prop_assert_eq!(
            topo::layering(&g).iter().map(Vec::len).sum::<usize>(),
            g.num_nodes()
        );
    }

    #[test]
    fn textio_roundtrips(g in arb_dag(25, 100, 100)) {
        let text = dagsched::dag::textio::write(&g);
        let parsed = dagsched::dag::textio::parse(&text).unwrap();
        prop_assert_eq!(g, parsed);
    }

    #[test]
    fn transpose_is_an_involution(g in arb_dag(25, 50, 50)) {
        use dagsched::dag::transform::transpose;
        prop_assert_eq!(transpose(&transpose(&g)), g);
    }

    #[test]
    fn dsh_duplication_schedules_are_valid(g in arb_dag(22, 80, 300)) {
        let s = dagsched::core::Dsh.schedule(&g, &Clique);
        let violations = s.check(&g, &Clique);
        prop_assert!(violations.is_empty(), "{violations:?}");
        // Duplication can only add copies, never drop tasks.
        prop_assert!(s.total_copies() >= g.num_nodes());
        // The computation-only critical path still lower-bounds it.
        prop_assert!(s.makespan() >= levels::critical_path_len_computation(&g));
    }

    #[test]
    fn meta_schedulers_are_valid_and_best_of_wins(g in arb_dag(20, 80, 300)) {
        use dagsched::core::{BandSelector, BestOf};
        let sel = BandSelector::default().schedule(&g, &Clique);
        prop_assert!(validate::is_valid(&g, &Clique, &sel));
        let best = BestOf::paper().schedule(&g, &Clique);
        prop_assert!(validate::is_valid(&g, &Clique, &best));
        // BEST-OF is at least as good as every paper heuristic,
        // including the selector's choice.
        prop_assert!(best.makespan() <= sel.makespan());
    }

    #[test]
    fn textio_parser_never_panics(s in "\\PC*") {
        // Fuzz: arbitrary junk must return Err, not panic.
        let _ = dagsched::dag::textio::parse(&s);
    }

    #[test]
    fn textio_parser_never_panics_on_directive_shaped_input(
        lines in prop::collection::vec(
            prop_oneof![
                Just("nodes 3".to_string()),
                "node [0-9]{1,3} [0-9]{1,3}".prop_map(|s| s),
                "edge [0-9]{1,2} [0-9]{1,2} [0-9]{1,3}".prop_map(|s| s),
                "# .*".prop_map(|s| s),
            ],
            0..12,
        )
    ) {
        let text = lines.join("\n");
        let _ = dagsched::dag::textio::parse(&text);
    }

    #[test]
    fn transitive_reduction_preserves_reachability(g in arb_dag(20, 10, 10)) {
        use dagsched::dag::transform::transitive_reduction;
        let r = transitive_reduction(&g);
        prop_assert!(r.num_edges() <= g.num_edges());
        let before = Closure::new(&g);
        let after = Closure::new(&r);
        for u in g.nodes() {
            for v in g.nodes() {
                if u != v {
                    prop_assert_eq!(before.reaches(u, v), after.reaches(u, v));
                }
            }
        }
        // Idempotent.
        prop_assert_eq!(transitive_reduction(&r), r);
    }

    #[test]
    fn granularity_is_scale_consistent(g in arb_dag(20, 100, 100)) {
        // Doubling every edge weight halves granularity (up to
        // integer exactness: weights are doubled exactly).
        if g.num_edges() > 0 {
            let before = metrics::granularity(&g);
            let mut b = g.to_builder();
            b.map_edge_weights(|w| w * 2);
            let doubled = b.build().unwrap();
            let after = metrics::granularity(&doubled);
            prop_assert!((after - before / 2.0).abs() < 1e-9 * before.max(1.0));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generator_hits_band_and_range(
        seed in 0u64..1000,
        band_idx in 0usize..5,
        anchor in 2usize..=5,
    ) {
        use rand::SeedableRng;
        let band = dagsched::gen::GranularityBand::ALL[band_idx];
        let weights = dagsched::gen::WeightRange::new(20, 200);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = dagsched::gen::pdg::generate(
            &dagsched::gen::PdgSpec { nodes: 40, anchor, weights, band },
            &mut rng,
        )
        .unwrap();
        let (lo, hi) = metrics::node_weight_range(&g).unwrap();
        prop_assert!(lo >= 20 && hi <= 200);
        prop_assert_eq!(metrics::anchor_out_degree_nonsink(&g), anchor);
        // Granularity targeting may rarely miss; the corpus retries.
        // Here we only require it to be within one band of the target.
        let gran = metrics::granularity(&g);
        let hit = band.contains(gran);
        let near = dagsched::gen::GranularityBand::classify(gran)
            .map(|b| {
                let ord = |x: dagsched::gen::GranularityBand| {
                    dagsched::gen::GranularityBand::ALL.iter().position(|&y| y == x).unwrap()
                };
                ord(b).abs_diff(ord(band)) <= 1
            })
            .unwrap_or(false);
        prop_assert!(hit || near, "granularity {gran} far from {band:?}");
    }
}
