//! End-to-end checks of the paper's *qualitative* findings on a
//! reduced corpus — the reproduction's acceptance tests.
//!
//! Absolute numbers differ from the 1994 tables (different random
//! corpus, clean-room heuristics), but the comparisons the paper's
//! conclusion draws must hold:
//!
//! 1. CLANS never produces speedup < 1 (Table 2);
//! 2. the critical-path and list heuristics retard a large share of
//!    the finest-granularity graphs, and none of the coarse ones;
//! 3. HU is uniformly worst: most retards, an order of magnitude more
//!    relative parallel time, near-zero efficiency;
//! 4. CLANS has the lowest relative parallel time in the finest band;
//! 5. average speedup increases with granularity for every heuristic;
//! 6. CLANS has the highest efficiency in the fine bands;
//! 7. widening the node weight range does not help DSC/MCP/MH/HU
//!    (speedups do not increase).

use dagsched::experiments::corpus::{generate_corpus, CorpusSpec};
use dagsched::experiments::runner::run_corpus;
use dagsched::experiments::tables;
use dagsched_core::paper_heuristics;

const BANDS: [&str; 5] = [
    "G < 0.08",
    "0.08 < G < 0.2",
    "0.2 < G < 0.8",
    "0.8 < G < 2",
    "2 < G",
];
const FINE: &str = "G < 0.08";
const COARSE: &str = "2 < G";
const HEURISTICS: [&str; 5] = ["CLANS", "DSC", "MCP", "MH", "HU"];

fn study() -> Vec<dagsched::experiments::GraphResult> {
    let spec = CorpusSpec {
        graphs_per_set: 4,
        nodes: 40..=70,
        ..Default::default()
    };
    run_corpus(&generate_corpus(&spec), &paper_heuristics())
}

#[test]
fn paper_shapes_hold_on_a_reduced_corpus() {
    let results = study();
    let graphs_per_band = results.len() / 5;

    // (1) CLANS never retards — Table 2's zero column.
    let t2 = tables::table2(&results);
    for band in BANDS {
        assert_eq!(
            t2.value(band, "CLANS"),
            Some(0.0),
            "CLANS retarded in {band}"
        );
    }

    // (2) DSC/MCP/MH retard a substantial share of the finest band and
    //     none of the coarse bands.
    for h in ["DSC", "MCP", "MH"] {
        let fine = t2.value(FINE, h).unwrap();
        assert!(
            fine > 0.25 * graphs_per_band as f64,
            "{h} retarded only {fine} of {graphs_per_band} finest graphs"
        );
        assert_eq!(
            t2.value("0.8 < G < 2", h),
            Some(0.0),
            "{h} retards coarse graphs"
        );
        assert_eq!(t2.value(COARSE, h), Some(0.0));
    }

    // (3) HU is uniformly worst.
    let t3 = tables::table3(&results);
    for band in BANDS {
        let hu_retards = t2.value(band, "HU").unwrap();
        let hu_nrpt = t3.value(band, "HU").unwrap();
        for h in ["CLANS", "DSC", "MCP", "MH"] {
            assert!(
                t2.value(band, h).unwrap() <= hu_retards,
                "{h} retards more than HU in {band}"
            );
            assert!(
                t3.value(band, h).unwrap() < hu_nrpt,
                "{h} NRPT not below HU in {band}"
            );
        }
    }
    // ... by an order of magnitude in the finest band.
    assert!(t3.value(FINE, "HU").unwrap() > 5.0 * t3.value(FINE, "MH").unwrap());

    // (4) CLANS wins the finest band on relative parallel time.
    let clans_fine = t3.value(FINE, "CLANS").unwrap();
    for h in ["DSC", "MCP", "MH", "HU"] {
        assert!(
            clans_fine < t3.value(FINE, h).unwrap(),
            "CLANS not best at fine granularity vs {h}"
        );
    }

    // (5) Speedup increases with granularity for every heuristic
    //     (allowing tiny non-monotonic jitter between adjacent bands).
    let t4 = tables::table4(&results);
    for h in HEURISTICS {
        let fine = t4.value(FINE, h).unwrap();
        let coarse = t4.value(COARSE, h).unwrap();
        assert!(
            coarse > fine * 1.5,
            "{h}: speedup did not grow with granularity ({fine} -> {coarse})"
        );
        // Weak monotonicity across the band sequence.
        let series: Vec<f64> = BANDS.iter().map(|b| t4.value(b, h).unwrap()).collect();
        for w in series.windows(2) {
            assert!(w[1] > w[0] * 0.85, "{h}: large speedup regression {w:?}");
        }
    }

    // (6) CLANS leads efficiency in the fine bands.
    let t5 = tables::table5(&results);
    for band in [FINE, "0.08 < G < 0.2"] {
        let clans = t5.value(band, "CLANS").unwrap();
        for h in ["DSC", "MCP", "MH", "HU"] {
            assert!(
                clans > t5.value(band, h).unwrap(),
                "CLANS efficiency not highest in {band} vs {h}"
            );
        }
    }

    // (7) Widening the node weight range does not *meaningfully*
    //     increase speedups (Table 8's downward trend; the paper
    //     itself calls this axis "not as conclusive", so the check
    //     allows sampling noise).
    let t8 = tables::table8(&results);
    for h in ["CLANS", "DSC", "MCP", "MH"] {
        // HU is excluded: its speedups sit near the retardation
        // boundary where per-graph noise dominates any range trend.
        let narrow = t8.value("20 - 100", h).unwrap();
        let wide = t8.value("20 - 400", h).unwrap();
        assert!(
            wide <= narrow * 1.10,
            "{h}: speedup grew with range ({narrow} -> {wide})"
        );
    }
}

#[test]
fn hu_uses_the_most_processors() {
    // The mechanism behind HU's near-zero efficiency (Tables 5/9): it
    // spreads obliviously. Overall it opens the most processors, and
    // in the finest band — where CLANS mostly serializes — the gap is
    // dramatic.
    let results = study();
    let (mut hu_all, mut clans_all) = (0usize, 0usize);
    let (mut hu_fine, mut clans_fine) = (0usize, 0usize);
    for r in &results {
        hu_all += r.outcome("HU").procs;
        clans_all += r.outcome("CLANS").procs;
        if r.key.band == dagsched::gen::GranularityBand::VeryFine {
            hu_fine += r.outcome("HU").procs;
            clans_fine += r.outcome("CLANS").procs;
        }
    }
    assert!(
        hu_all > clans_all,
        "HU {hu_all} vs CLANS {clans_all} processors overall"
    );
    assert!(
        hu_fine > 2 * clans_fine,
        "HU {hu_fine} vs CLANS {clans_fine} processors in the finest band"
    );
}

#[test]
fn nrpt_winner_exists_per_graph() {
    for r in study() {
        assert!(
            r.outcomes.iter().any(|o| o.nrpt == 0.0),
            "some heuristic must be the best on every graph"
        );
    }
}
