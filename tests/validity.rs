//! Cross-crate integration: every scheduler must produce schedules
//! that the independent oracle accepts, on every graph family, under
//! every machine model — and the discrete-event simulator must agree
//! with the analytic times.

use dagsched::core::{all_heuristics, Scheduler};
use dagsched::dag::Dag;
use dagsched::gen::families;
use dagsched::sim::{event, validate, BoundedClique, Clique, Hypercube, Machine, Mesh2D, Ring};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn family_zoo() -> Vec<(String, Dag)> {
    let mut rng = StdRng::seed_from_u64(77);
    let mut zoo: Vec<(String, Dag)> = vec![
        ("chain".into(), families::chain(12, 10, 25)),
        ("independent".into(), families::independent(9, 30)),
        ("fork_join".into(), families::fork_join(7, 40, 15)),
        ("out_tree".into(), families::binary_out_tree(4, 20, 8)),
        ("in_tree".into(), families::binary_in_tree(4, 20, 8)),
        ("gauss".into(), families::gaussian_elimination(6, 3, 12)),
        ("fft".into(), families::fft(3, 15, 60)),
        ("stencil".into(), families::stencil(4, 5, 10, 35)),
        (
            "layered".into(),
            families::layered_random(5, 5, 3, (20, 100), (1, 80), &mut rng),
        ),
        ("fig16".into(), dagsched::core::fixtures::fig16()),
        (
            "coarse_fj".into(),
            dagsched::core::fixtures::coarse_fork_join(),
        ),
        ("fine_fj".into(), dagsched::core::fixtures::fine_fork_join()),
    ];
    // A couple of random PDGs from each granularity extreme.
    for band in [
        dagsched::gen::GranularityBand::VeryFine,
        dagsched::gen::GranularityBand::VeryCoarse,
    ] {
        for i in 0..2 {
            let g = dagsched::gen::pdg::generate(
                &dagsched::gen::PdgSpec {
                    nodes: 35,
                    anchor: 3,
                    weights: dagsched::gen::WeightRange::new(20, 200),
                    band,
                },
                &mut rng,
            )
            .expect("zoo spec is valid");
            zoo.push((format!("pdg_{band:?}_{i}"), g));
        }
    }
    zoo
}

#[test]
fn all_schedulers_valid_on_the_clique() {
    let machine = Clique;
    for (name, g) in family_zoo() {
        for h in all_heuristics() {
            let s = h.schedule(&g, &machine);
            let violations = validate::check(&g, &machine, &s);
            assert!(
                violations.is_empty(),
                "{} on {name}: {violations:?}",
                h.name()
            );
            assert_eq!(s.num_tasks(), g.num_nodes());
        }
    }
}

#[test]
fn all_schedulers_valid_on_bounded_and_topology_machines() {
    let machines: Vec<Box<dyn Machine>> = vec![
        Box::new(BoundedClique::new(1)),
        Box::new(BoundedClique::new(3)),
        Box::new(Ring::new(4)),
        Box::new(Mesh2D::new(2, 3)),
        Box::new(Hypercube::new(2)),
    ];
    for (name, g) in family_zoo() {
        for m in &machines {
            for h in all_heuristics() {
                let s = h.schedule(&g, m.as_ref());
                let violations = validate::check(&g, m.as_ref(), &s);
                assert!(
                    violations.is_empty(),
                    "{} on {name} under {}: {violations:?}",
                    h.name(),
                    m.name()
                );
            }
        }
    }
}

#[test]
fn event_simulator_agrees_with_analytic_times() {
    let machine = Clique;
    for (name, g) in family_zoo() {
        for h in all_heuristics() {
            let s = h.schedule(&g, &machine);
            let r = event::simulate(&g, &machine, &s, None);
            assert_eq!(
                r.makespan,
                s.makespan(),
                "{} on {name}: event sim disagrees",
                h.name()
            );
            for v in g.nodes() {
                assert_eq!(
                    r.start[v.index()],
                    s.start_of(v),
                    "{} on {name}, {v}",
                    h.name()
                );
            }
        }
    }
}

#[test]
fn makespan_never_below_computation_critical_path() {
    // No valid schedule can beat the computation-only critical path.
    let machine = Clique;
    for (name, g) in family_zoo() {
        let bound = dagsched::dag::levels::critical_path_len_computation(&g);
        for h in all_heuristics() {
            let s = h.schedule(&g, &machine);
            assert!(
                s.makespan() >= bound,
                "{} on {name}: {} < CP bound {bound}",
                h.name(),
                s.makespan()
            );
        }
    }
}

#[test]
fn serial_is_an_upper_bound_for_clans_and_a_reference_for_others() {
    let machine = Clique;
    for (name, g) in family_zoo() {
        let serial = g.serial_time();
        let clans = dagsched::core::Clans.schedule(&g, &machine);
        assert!(
            clans.makespan() <= serial,
            "CLANS exceeded serial on {name}"
        );
        let dsc = dagsched::core::Dsc.schedule(&g, &machine);
        assert!(
            dsc.makespan() <= dagsched::dag::levels::critical_path_len(&g),
            "DSC exceeded the fully parallel bound on {name}"
        );
    }
}
