//! Service-layer integration tests, run against an in-process server
//! ([`dagsched::server::start`]): answer fidelity versus direct
//! scheduling, cache/coalescing provenance, admission control and load
//! shedding under adversarial concurrent load, deadline-tier
//! degradation, and poison-request containment. Process-level crash
//! and restart behaviour (SIGKILL, warm-start) lives in the server
//! crate's own `tests/restart.rs`.

use dagsched::core::{all_heuristics, parse_machine};
use dagsched::dag::textio;
use dagsched::obs::Json;
use dagsched::server::{encode_schedule_request, start, submit, ServerConfig, REQUEST_SCHEMA};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const SAMPLE: &str = "\
nodes 4
node 0 10
node 1 20
node 2 30
node 3 10
edge 0 1 5
edge 0 2 5
edge 1 3 2
edge 2 3 2
";

/// A second graph, fingerprint-distinct from [`SAMPLE`].
const OTHER: &str = "\
nodes 3
node 0 7
node 1 11
node 2 13
edge 0 1 3
edge 0 2 3
";

const CYCLIC: &str = "\
nodes 2
node 0 1
node 1 1
edge 0 1 1
edge 1 0 1
";

fn chaos_config() -> ServerConfig {
    ServerConfig {
        chaos: true,
        ..ServerConfig::default()
    }
}

fn schedule_line(graph: &str, heuristic: &str, budget_ms: Option<u64>) -> String {
    encode_schedule_request(graph, heuristic, "uniform", budget_ms, Some("t"))
}

fn submit_json(addr: &str, line: &str) -> Json {
    let response = submit(addr, line).expect("submit");
    Json::parse(&response).expect("response is JSON")
}

fn placements_of(j: &Json) -> Vec<(u64, u64)> {
    j.get("placements")
        .and_then(Json::as_arr)
        .expect("placements array")
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().expect("placement pair");
            (pair[0].as_u64().unwrap(), pair[1].as_u64().unwrap())
        })
        .collect()
}

fn counter(stats: &Json, name: &str) -> u64 {
    stats
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn stats_of(addr: &str) -> Json {
    submit_json(
        addr,
        &format!("{{\"schema\":\"{REQUEST_SCHEMA}\",\"kind\":\"stats\"}}"),
    )
}

fn trace_id_of(j: &Json) -> String {
    j.get("trace_id")
        .and_then(Json::as_str)
        .expect("schedule responses carry a trace_id")
        .to_string()
}

/// Blanks the `trace_id` value (fresh per request by design) so two
/// response lines can be compared for determinism.
fn without_trace_id(line: &str) -> String {
    const KEY: &str = "\"trace_id\":\"";
    let start = line.find(KEY).expect("responses carry a trace_id") + KEY.len();
    let end = start + line[start..].find('"').expect("trace_id is terminated");
    format!("{}{}", &line[..start], &line[end..])
}

#[test]
fn answers_are_bit_identical_to_direct_scheduling_on_miss_and_hit() {
    let handle = start(ServerConfig::default()).expect("server starts");
    let addr = handle.local_addr().to_string();
    let g = textio::parse(SAMPLE).unwrap();
    let machine = parse_machine("uniform").unwrap();
    for h in all_heuristics() {
        let direct = h.schedule(&g, machine.as_ref());
        let line = schedule_line(SAMPLE, h.name(), None);

        let miss = submit_json(&addr, &line);
        assert_eq!(
            miss.get("status").unwrap().as_str(),
            Some("ok"),
            "{}",
            h.name()
        );
        assert_eq!(miss.get("tier").unwrap().as_str(), Some("primary"));
        assert_eq!(miss.get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(
            miss.get("makespan").unwrap().as_u64(),
            Some(direct.makespan()),
            "{}",
            h.name()
        );
        let expected: Vec<(u64, u64)> = (0..g.num_nodes())
            .map(|v| {
                let p = direct.placement(dagsched::dag::NodeId(v as u32));
                (u64::from(p.proc.0), p.start)
            })
            .collect();
        assert_eq!(placements_of(&miss), expected, "{}", h.name());

        // The repeat is served from the cache and differs only in the
        // `cached` provenance bit.
        let hit = submit(&addr, &line).unwrap();
        let miss_again = submit(&addr, &line).unwrap();
        assert!(hit.contains("\"cached\":true"), "{hit}");
        // Deterministic modulo the trace_id, which is fresh per
        // request even on a cache hit.
        assert_eq!(
            without_trace_id(&hit),
            without_trace_id(&miss_again),
            "cache hits are deterministic"
        );
        assert_ne!(
            trace_id_of(&Json::parse(&hit).unwrap()),
            trace_id_of(&Json::parse(&miss_again).unwrap()),
        );
        assert_eq!(placements_of(&Json::parse(&hit).unwrap()), expected);
    }
    // Counters exist only with the default `obs` feature; the
    // `--no-default-features` build still serves correct answers, it
    // just reports empty stats.
    if cfg!(feature = "obs") {
        let stats = stats_of(&addr);
        assert!(
            counter(&stats, "server.cache.hit") >= 11,
            "two hits per heuristic"
        );
        assert!(counter(&stats, "server.cache.miss") >= 11);
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn the_exact_anchor_is_served_by_name_with_a_proven_optimal_makespan() {
    let handle = start(ServerConfig::default()).expect("server starts");
    let addr = handle.local_addr().to_string();
    let g = textio::parse(SAMPLE).unwrap();
    let machine = parse_machine("uniform").unwrap();
    let direct = dagsched::exact::solve(
        &g,
        machine.as_ref(),
        &dagsched::exact::ExactConfig::default(),
    )
    .expect("4 nodes is within the exact solver's cap");
    assert!(direct.proven, "a 4-node uniform instance proves out");

    let j = submit_json(&addr, &schedule_line(SAMPLE, "EXACT", None));
    assert_eq!(j.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(j.get("scheduled_by").unwrap().as_str(), Some("EXACT"));
    assert_eq!(j.get("tier").unwrap().as_str(), Some("primary"));
    assert_eq!(j.get("makespan").unwrap().as_u64(), Some(direct.makespan));

    // The optimum anchors every heuristic the server offers from below.
    for h in all_heuristics() {
        let a = submit_json(&addr, &schedule_line(SAMPLE, h.name(), None));
        assert!(
            a.get("makespan").unwrap().as_u64().unwrap() >= direct.makespan,
            "{} beat a proven optimum",
            h.name()
        );
    }

    // EXACT answers ride the same cache machinery as the heuristics.
    let hit = submit_json(&addr, &schedule_line(SAMPLE, "EXACT", None));
    assert_eq!(hit.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(hit.get("makespan").unwrap().as_u64(), Some(direct.makespan));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn concurrent_identical_requests_coalesce_onto_one_computation() {
    let handle = start(chaos_config()).expect("server starts");
    let addr = handle.local_addr().to_string();
    // CHAOS-SLEEPY holds its worker long enough for the other clients
    // to arrive while the leader is still computing.
    let line = schedule_line(SAMPLE, "CHAOS-SLEEPY", None);
    let answers: Vec<Json> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| submit_json(&addr, &line)))
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let first = placements_of(&answers[0]);
    for a in &answers {
        assert_eq!(a.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(
            placements_of(a),
            first,
            "every caller gets the same schedule"
        );
    }
    if cfg!(feature = "obs") {
        let stats = stats_of(&addr);
        assert_eq!(
            counter(&stats, "server.requests.coalesced") + counter(&stats, "server.cache.hit"),
            3,
            "one leader computed, three followers coalesced or hit the cache"
        );
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn full_queue_sheds_distinct_requests_with_overloaded() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_capacity: 0,
        ..chaos_config()
    })
    .expect("server starts");
    let addr = handle.local_addr().to_string();
    // Occupy the single worker with a slow computation...
    let slow = schedule_line(SAMPLE, "CHAOS-SLEEPY", None);
    let blocker = {
        let addr = addr.clone();
        std::thread::spawn(move || submit_json(&addr, &slow))
    };
    std::thread::sleep(Duration::from_millis(80));
    // ...then a *distinct* request (different graph, so single-flight
    // cannot absorb it) finds queue capacity 0 and is shed.
    let shed = submit_json(&addr, &schedule_line(OTHER, "DSC", None));
    assert_eq!(shed.get("status").unwrap().as_str(), Some("overloaded"));
    assert_eq!(
        blocker.join().unwrap().get("status").unwrap().as_str(),
        Some("ok")
    );
    // With the worker free again the same request is admitted.
    let retry = submit_json(&addr, &schedule_line(OTHER, "DSC", None));
    assert_eq!(retry.get("status").unwrap().as_str(), Some("ok"));
    if cfg!(feature = "obs") {
        let stats = stats_of(&addr);
        assert!(counter(&stats, "server.shed") >= 1);
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn budget_exceeded_requests_answer_from_the_fallback_tier() {
    let handle = start(chaos_config()).expect("server starts");
    let addr = handle.local_addr().to_string();
    // 25ms budget against the fixture's 250ms sleep: the watchdog
    // abandons the primary and the harness degrades to HU.
    let j = submit_json(&addr, &schedule_line(SAMPLE, "CHAOS-SLEEPY", Some(25)));
    assert_eq!(j.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(j.get("scheduled_by").unwrap().as_str(), Some("HU"));
    assert_eq!(j.get("tier").unwrap().as_str(), Some("fallback:HU"));
    let incidents = j.get("incidents").and_then(Json::as_arr).unwrap();
    assert!(
        incidents
            .iter()
            .any(|i| i.get("kind").and_then(Json::as_str) == Some("deadline-exceeded")),
        "the deadline incident is reported"
    );
    if cfg!(feature = "obs") {
        let stats = stats_of(&addr);
        assert!(counter(&stats, "server.fallback.requests") >= 1);
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn poison_requests_get_structured_errors_and_the_connection_survives() {
    let handle = start(chaos_config()).expect("server starts");
    let addr = handle.local_addr().to_string();
    // One persistent connection: a poison graph, a panicking
    // heuristic, then a normal request — the same worker must answer
    // all three.
    let stream = TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut ask = |line: &str| -> Json {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        Json::parse(&response).expect("structured response")
    };

    let j = ask(&schedule_line(CYCLIC, "DSC", None));
    assert_eq!(j.get("status").unwrap().as_str(), Some("error"));
    assert_eq!(j.get("code").unwrap().as_str(), Some("parse-error"));

    let j = ask("this is not even json");
    assert_eq!(j.get("status").unwrap().as_str(), Some("error"));
    assert_eq!(j.get("code").unwrap().as_str(), Some("bad-request"));

    let j = ask(&schedule_line(SAMPLE, "CHAOS-PANIC", None));
    assert_eq!(
        j.get("status").unwrap().as_str(),
        Some("ok"),
        "panic is contained"
    );
    assert_eq!(j.get("tier").unwrap().as_str(), Some("fallback:HU"));

    let j = ask(&schedule_line(SAMPLE, "NO-SUCH", None));
    assert_eq!(j.get("code").unwrap().as_str(), Some("unknown-heuristic"));

    let j = ask(&schedule_line(SAMPLE, "DSC", None));
    assert_eq!(
        j.get("status").unwrap().as_str(),
        Some("ok"),
        "worker survives"
    );
    assert_eq!(j.get("tier").unwrap().as_str(), Some("primary"));
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn metrics_request_answers_with_prometheus_exposition() {
    let handle = start(ServerConfig::default()).expect("server starts");
    let addr = handle.local_addr().to_string();
    for graph in [SAMPLE, OTHER] {
        let j = submit_json(&addr, &schedule_line(graph, "DSC", None));
        assert_eq!(j.get("status").unwrap().as_str(), Some("ok"));
    }
    let j = submit_json(
        &addr,
        &format!("{{\"schema\":\"{REQUEST_SCHEMA}\",\"kind\":\"metrics\",\"id\":\"m1\"}}"),
    );
    assert_eq!(j.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(j.get("kind").unwrap().as_str(), Some("metrics"));
    assert_eq!(j.get("id").unwrap().as_str(), Some("m1"));
    let body = j.get("body").and_then(Json::as_str).expect("body text");
    // Every non-comment, non-blank line is `name{labels} value`.
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("series and value");
        assert!(!series.is_empty(), "{line}");
        assert!(value.parse::<f64>().is_ok(), "{line}");
    }
    if cfg!(feature = "obs") {
        assert!(
            body.contains("# TYPE server_requests_total counter"),
            "{body}"
        );
        assert!(
            body.contains("# TYPE server_latency_ms histogram"),
            "{body}"
        );
        assert!(
            body.contains("server_latency_ms_bucket{le=\"+Inf\"} "),
            "{body}"
        );
        for q in ["p50", "p95", "p99"] {
            assert!(body.contains(&format!("server_latency_ms_{q} ")), "{body}");
        }
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn slow_requests_leave_trace_id_exemplars_in_stats() {
    // Threshold zero: every request qualifies, so the buffer must end
    // up holding the worst ones — the CHAOS-SLEEPY computation.
    let handle = start(ServerConfig {
        slow_threshold: Duration::ZERO,
        slow_exemplars: 4,
        ..chaos_config()
    })
    .expect("server starts");
    let addr = handle.local_addr().to_string();
    let quick = submit_json(&addr, &schedule_line(SAMPLE, "DSC", None));
    let sleepy = submit_json(&addr, &schedule_line(SAMPLE, "CHAOS-SLEEPY", None));
    let quick_id = trace_id_of(&quick);
    let sleepy_id = trace_id_of(&sleepy);
    assert_ne!(quick_id, sleepy_id);

    let stats = stats_of(&addr);
    let slow = stats
        .get("slow_requests")
        .and_then(Json::as_arr)
        .expect("stats carry slow_requests");
    assert!(!slow.is_empty());
    let ids: Vec<&str> = slow
        .iter()
        .map(|e| e.get("trace_id").and_then(Json::as_str).unwrap())
        .collect();
    assert!(ids.contains(&sleepy_id.as_str()), "{ids:?}");
    // Worst first: the 250ms sleeper outranks the quick request.
    assert_eq!(ids[0], sleepy_id, "{ids:?}");
    let worst = &slow[0];
    assert_eq!(
        worst.get("kind").and_then(Json::as_str),
        Some("schedule CHAOS-SLEEPY")
    );
    assert!(worst.get("latency_us").and_then(Json::as_u64).unwrap() >= 250_000);
    let tree = worst.get("span_tree").and_then(Json::as_arr).unwrap();
    if cfg!(feature = "obs") {
        // The request span roots the exemplar's tree.
        assert_eq!(
            tree[0].get("name").and_then(Json::as_str),
            Some("server.request")
        );
        assert_eq!(tree[0].get("parent").and_then(Json::as_u64), None);
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn protocol_shutdown_drains_the_server() {
    let handle = start(ServerConfig::default()).expect("server starts");
    let addr = handle.local_addr().to_string();
    let pong = submit_json(
        &addr,
        &format!("{{\"schema\":\"{REQUEST_SCHEMA}\",\"kind\":\"ping\"}}"),
    );
    assert_eq!(pong.get("kind").unwrap().as_str(), Some("pong"));
    let ack = submit_json(
        &addr,
        &format!("{{\"schema\":\"{REQUEST_SCHEMA}\",\"kind\":\"shutdown\"}}"),
    );
    assert_eq!(ack.get("kind").unwrap().as_str(), Some("shutdown-ack"));
    assert!(handle.stop_requested());
    handle.shutdown().expect("drain after protocol shutdown");
}
