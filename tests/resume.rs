//! Crash-safety integration tests: a checkpointed corpus sweep killed
//! at an arbitrary byte offset and resumed must reproduce the
//! uninterrupted run exactly — same per-graph results (bit-exact
//! floats), same robustness report, no finished graph run twice — and
//! poison graphs must land in quarantine rather than sink the sweep.

use dagsched::core::{all_heuristics, paper_heuristics, MachineSpec, Scheduler};
use dagsched::dag::Dag;
use dagsched::experiments::checkpoint::JOURNAL_FILE;
use dagsched::experiments::{run_corpus_checkpointed, CorpusSpec, SweepConfig};
use dagsched::sim::{Machine, Schedule};
use dagsched::RetryPolicy;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn spec() -> CorpusSpec {
    CorpusSpec {
        graphs_per_set: 1,
        nodes: 12..=20,
        ..CorpusSpec::default()
    }
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dagsched-resume-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn killed_sweep_resumes_to_identical_results() {
    let spec = spec();
    let config = SweepConfig::default();
    let full_dir = tmp("full");
    let full = run_corpus_checkpointed(&spec, paper_heuristics(), &config, &full_dir, false)
        .expect("uninterrupted sweep");
    assert_eq!(full.results.len(), spec.total_graphs());
    assert_eq!(full.executed, spec.total_graphs());
    assert_eq!(full.replayed, 0);
    let journal = std::fs::read(full_dir.join(JOURNAL_FILE)).expect("journal written");
    std::fs::remove_dir_all(&full_dir).ok();

    // Kill the sweep at assorted byte offsets — line boundaries and
    // mid-record tears alike — by keeping only a prefix of the
    // journal, then resume from it. Any prefix must be recoverable:
    // a partial trailing record is dropped as a torn tail and its
    // graph simply re-runs.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
    let newlines: Vec<usize> = journal
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    let mut cuts: Vec<usize> = vec![0, newlines[0], journal.len() - 7];
    for _ in 0..3 {
        cuts.push(rng.gen_range(1..journal.len()));
        cuts.push(newlines[rng.gen_range(0..newlines.len())]);
    }
    for (i, cut) in cuts.into_iter().enumerate() {
        let dir = tmp(&format!("cut{i}"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), &journal[..cut]).unwrap();
        let resumed = run_corpus_checkpointed(&spec, paper_heuristics(), &config, &dir, true)
            .unwrap_or_else(|e| panic!("resume from byte {cut} failed: {e}"));
        assert_eq!(resumed.results, full.results, "cut at byte {cut}");
        assert_eq!(
            resumed.robustness.render(),
            full.robustness.render(),
            "cut at byte {cut}"
        );
        assert_eq!(
            resumed.replayed + resumed.executed,
            spec.total_graphs(),
            "every graph runs exactly once (cut at byte {cut})"
        );
        // The repaired journal is complete: a second resume replays
        // everything and executes nothing.
        let again = run_corpus_checkpointed(&spec, paper_heuristics(), &config, &dir, true)
            .expect("second resume");
        assert_eq!(again.executed, 0, "cut at byte {cut}");
        assert_eq!(again.results, full.results, "cut at byte {cut}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Panics on every graph whose node count is divisible by three;
/// schedules the rest like HU.
struct Poison(Box<dyn Scheduler>);

fn poison() -> Box<dyn Scheduler> {
    let hu = all_heuristics()
        .into_iter()
        .find(|h| h.name() == "HU")
        .expect("HU registered");
    Box::new(Poison(hu))
}

impl Scheduler for Poison {
    fn name(&self) -> &'static str {
        "POISON"
    }
    fn schedule(&self, g: &Dag, machine: &dyn Machine) -> Schedule {
        if g.num_nodes().is_multiple_of(3) {
            panic!("poisoned graph with {} nodes", g.num_nodes());
        }
        self.0.schedule(g, machine)
    }
}

#[test]
fn poison_graphs_quarantine_and_survive_resume() {
    let spec = spec();
    // Trusted sweep (no harness): the poison's panics escape to the
    // retry loop, exhaust it, and quarantine every affected graph;
    // healthy graphs still complete.
    let config = SweepConfig {
        harness: None,
        retry: RetryPolicy::none(),
        strict: false,
        ..SweepConfig::default()
    };
    let dir = tmp("poison");
    let out = run_corpus_checkpointed(&spec, vec![poison()], &config, &dir, false)
        .expect("poisoned sweep completes");
    assert!(!out.quarantine.is_empty(), "some graphs hit the poison");
    assert!(!out.results.is_empty(), "healthy graphs still complete");
    assert_eq!(
        out.results.len() + out.quarantine.len(),
        spec.total_graphs()
    );
    let report = out.robustness.render();
    assert!(report.contains("uarantine"), "{report}");
    // Resume replays both journals: nothing re-executes, nothing is
    // re-quarantined, and the report is unchanged.
    let resumed = run_corpus_checkpointed(&spec, vec![poison()], &config, &dir, true)
        .expect("resume after quarantine");
    assert_eq!(resumed.executed, 0);
    assert_eq!(resumed.results, out.results);
    assert_eq!(resumed.quarantine.len(), out.quarantine.len());
    assert_eq!(resumed.robustness.render(), report);
    // Strict mode refuses to bless a sweep with quarantined graphs.
    let strict = SweepConfig {
        strict: true,
        ..config
    };
    let err = run_corpus_checkpointed(&spec, vec![poison()], &strict, &dir, true)
        .expect_err("strict sweep fails");
    assert!(err.to_string().contains("quarantin"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
    // Under the harness the same poison is contained instead: panics
    // become incidents, the fallback chain completes every graph, and
    // nothing is quarantined.
    let dir2 = tmp("contained");
    let contained =
        run_corpus_checkpointed(&spec, vec![poison()], &SweepConfig::default(), &dir2, false)
            .expect("harnessed sweep completes");
    assert!(contained.quarantine.is_empty());
    assert_eq!(contained.results.len(), spec.total_graphs());
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn journal_refuses_resume_under_a_different_machine_model() {
    let spec = spec();
    let dir = tmp("machine");
    let uniform = SweepConfig::default();
    run_corpus_checkpointed(&spec, paper_heuristics(), &uniform, &dir, false)
        .expect("uniform sweep completes");
    // The journal was written for the paper's uniform model; resuming
    // it under bounded:4 would silently mix schedules produced for
    // incompatible machines, so it must be refused with a message that
    // names the cause.
    let bounded = SweepConfig {
        machine: MachineSpec::Bounded(4),
        ..SweepConfig::default()
    };
    let err = run_corpus_checkpointed(&spec, paper_heuristics(), &bounded, &dir, true)
        .expect_err("uniform journal must not resume under bounded:4");
    let msg = err.to_string();
    assert!(msg.contains("machine model"), "{msg}");
    // Under the model that wrote it, the same journal replays cleanly.
    let resumed = run_corpus_checkpointed(&spec, paper_heuristics(), &uniform, &dir, true)
        .expect("same-model resume");
    assert_eq!(resumed.executed, 0);
    assert_eq!(resumed.replayed, spec.total_graphs());
    std::fs::remove_dir_all(&dir).ok();
}
