//! End-to-end telemetry: an instrumented corpus run must stream one
//! schema-valid JSONL record per (graph, heuristic) run — fallback
//! runs included — and two identical seeded runs must produce
//! byte-identical traces modulo the `"ns"` span-timing fields, the
//! one nondeterministic quantity in the schema.

use dagsched::experiments::corpus::{generate_corpus, CorpusSpec};
use dagsched::experiments::telemetry::{entry_id, run_corpus_traced};
use dagsched::harness::chaos::PanicScheduler;
use dagsched::harness::HarnessConfig;
use dagsched::obs::{Json, TelemetrySink, RUN_SCHEMA, SUMMARY_SCHEMA};
use dagsched_core::paper_heuristics;
use std::collections::HashSet;

fn spec() -> CorpusSpec {
    CorpusSpec {
        graphs_per_set: 1,
        nodes: 12..=18,
        ..Default::default()
    }
}

/// Runs the corpus harnessed with the five paper heuristics plus a
/// panicking chaos scheduler, and returns the raw JSONL trace.
fn trace_with_chaos() -> (Vec<dagsched::experiments::CorpusEntry>, String) {
    let corpus = generate_corpus(&spec());
    let mut heuristics = paper_heuristics();
    heuristics.push(Box::new(PanicScheduler));
    let traced = run_corpus_traced(&corpus, heuristics, Some(HarnessConfig::default()), None);
    let (sink, buffer) = TelemetrySink::in_memory();
    traced.write_trace(&corpus, &sink).unwrap();
    (corpus, buffer.contents())
}

#[test]
fn every_line_is_schema_valid_and_every_run_is_covered() {
    let (corpus, text) = trace_with_chaos();
    let heuristics = ["CLANS", "DSC", "MCP", "MH", "HU", "CHAOS-PANIC"];

    let mut seen: HashSet<(String, String)> = HashSet::new();
    let mut summary_rows: Vec<String> = Vec::new();
    for line in text.lines() {
        let j = Json::parse(line).expect("every line parses as JSON");
        match j.get("schema").and_then(Json::as_str) {
            Some(RUN_SCHEMA) => {
                let graph = j.get("graph").expect("run records carry graph meta");
                let id = graph.get("id").unwrap().as_str().unwrap().to_string();
                let heuristic = j.get("heuristic").unwrap().as_str().unwrap().to_string();
                assert!(heuristics.contains(&heuristic.as_str()), "{heuristic}");
                // Every field of the schema is present (absent → null,
                // never omitted).
                for key in [
                    "scheduled_by",
                    "ok",
                    "processors",
                    "makespan",
                    "speedup",
                    "incidents",
                ] {
                    assert!(j.get(key).is_some(), "{heuristic}: missing {key}");
                }
                assert!(graph.get("nodes").unwrap().as_u64().unwrap() >= 12);
                assert!(j.get("makespan").unwrap().as_u64().is_some());
                // The chaos runs are the fallback runs: the harness
                // resolves them through HU and records the incident.
                if heuristic == "CHAOS-PANIC" {
                    assert_eq!(
                        j.get("scheduled_by").unwrap().as_str(),
                        Some("HU"),
                        "fallback runs name their resolver"
                    );
                    let incidents = j.get("incidents").unwrap().as_arr().unwrap();
                    assert_eq!(incidents.len(), 1);
                    assert_eq!(incidents[0].get("kind").unwrap().as_str(), Some("panic"));
                }
                assert!(
                    seen.insert((id, heuristic)),
                    "duplicate (graph, heuristic) record"
                );
            }
            Some(SUMMARY_SCHEMA) => {
                summary_rows.push(j.get("heuristic").unwrap().as_str().unwrap().to_string());
            }
            other => panic!("unexpected schema {other:?}"),
        }
    }

    // One record per (graph, heuristic) — fallback runs included.
    assert_eq!(seen.len(), corpus.len() * heuristics.len());
    for entry in &corpus {
        let id = entry_id(entry);
        for h in heuristics {
            assert!(
                seen.contains(&(id.clone(), h.to_string())),
                "missing record for ({id}, {h})"
            );
        }
    }
    // Plus one trailing summary line per heuristic, sorted by name.
    let mut expected: Vec<String> = heuristics.iter().map(|h| h.to_string()).collect();
    expected.sort();
    assert_eq!(summary_rows, expected);
}

/// Replaces every `"ns":<digits>` value with `"ns":0` — span timing
/// is the only field the schema allows to vary between identical runs.
fn strip_ns(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find("\"ns\":") {
        let (head, tail) = rest.split_at(pos + "\"ns\":".len());
        out.push_str(head);
        out.push('0');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[test]
fn identical_seeded_runs_trace_identically_modulo_timing() {
    let (_, a) = trace_with_chaos();
    let (_, b) = trace_with_chaos();
    assert_eq!(strip_ns(&a), strip_ns(&b));
    // The traces really carry content, not just blank lines.
    assert!(a.lines().count() > 60);
}

/// The eight labellings `DagAnalysis` materializes, by counter name.
const ANALYSIS_COUNTERS: [&str; 8] = [
    "dag.analysis.blevels_comm",
    "dag.analysis.blevels_comp",
    "dag.analysis.tlevels_comm",
    "dag.analysis.tlevels_comp",
    "dag.analysis.alap",
    "dag.analysis.slacks",
    "dag.analysis.critical_path",
    "dag.analysis.closure",
];

#[test]
#[cfg(feature = "obs")]
fn each_labelling_is_computed_exactly_once_per_graph() {
    // The ISSUE's acceptance gate: a corpus sweep over five heuristics
    // computes every labelling AT MOST ONCE per graph. The warm-up
    // scope records exactly one computation of each, and no per-run
    // scope (other than CLANS, which analyses its own quotient
    // sub-graphs) records any top-level labelling work at all.
    let corpus = generate_corpus(&spec());
    let traced = run_corpus_traced(&corpus, paper_heuristics(), None, None);
    assert_eq!(traced.analysis.len(), corpus.len());
    for (i, warm) in traced.analysis.iter().enumerate() {
        for name in ANALYSIS_COUNTERS {
            assert_eq!(
                warm.counter(name),
                1,
                "graph {i}: {name} computed != 1 times in the warm-up"
            );
        }
    }
    for (i, runs) in traced.runs.iter().enumerate() {
        for run in runs {
            if run.heuristic == "CLANS" {
                continue;
            }
            for name in ANALYSIS_COUNTERS {
                assert_eq!(
                    run.stats.counter(name),
                    0,
                    "graph {i}, {}: recomputed {name} despite the warm cache",
                    run.heuristic
                );
            }
        }
    }
}

#[test]
fn traces_are_identical_whether_the_cache_is_cold_or_warm() {
    // First sweep: every graph's cache is cold. Second sweep over the
    // SAME corpus objects: every cache is already warm. The emitted
    // JSONL must not be able to tell the difference (modulo "ns").
    let corpus = generate_corpus(&spec());
    let trace = || {
        let traced = run_corpus_traced(&corpus, paper_heuristics(), None, None);
        let (sink, buffer) = TelemetrySink::in_memory();
        traced.write_trace(&corpus, &sink).unwrap();
        buffer.contents()
    };
    let cold = trace();
    let warm = trace();
    assert_eq!(strip_ns(&cold), strip_ns(&warm));
    assert!(cold.lines().count() > 60);
}

/// Additionally blanks `"ts":<num>` and `"dur":<num>` values — the
/// only nondeterministic quantities in a Chrome trace-event export.
fn strip_times(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    loop {
        let next = ["\"ts\":", "\"dur\":"]
            .iter()
            .filter_map(|key| rest.find(key).map(|pos| (pos, key.len())))
            .min();
        let Some((pos, key_len)) = next else { break };
        let (head, tail) = rest.split_at(pos + key_len);
        out.push_str(head);
        out.push('0');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit() || c == '.');
    }
    out.push_str(rest);
    out
}

#[test]
fn stats_merge_is_associative_including_span_trees() {
    use dagsched::obs;
    let make = |rounds: usize| {
        let scope = obs::run_scope();
        obs::counter_add("m.count", rounds as u64 + 1);
        obs::hist_record("m.hist", 1 << rounds);
        for _ in 0..rounds {
            let _outer = obs::span!("outer");
            let _inner = obs::span!("inner");
        }
        {
            let _solo = obs::span!("solo");
        }
        scope.finish()
    };
    let (a, b, c) = (make(1), make(3), make(2));
    let left = {
        let mut ab = a.clone();
        ab.merge(&b);
        ab.merge(&c);
        ab
    };
    let right = {
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a = a.clone();
        a.merge(&bc);
        a
    };
    assert_eq!(left, right, "merge is associative");
    assert_eq!(left.span_tree().len(), right.span_tree().len());
    for (l, r) in left.span_tree().iter().zip(right.span_tree()) {
        assert_eq!((l.name, l.parent, l.calls), (r.name, r.parent, r.calls));
    }
}

#[test]
fn chrome_export_is_byte_identical_modulo_timing() {
    let (corpus, _) = trace_with_chaos();
    let render = || {
        let mut heuristics = paper_heuristics();
        heuristics.push(Box::new(PanicScheduler));
        let traced = run_corpus_traced(&corpus, heuristics, Some(HarnessConfig::default()), None);
        traced.render_chrome_trace(&corpus)
    };
    let a = render();
    let b = render();
    assert_eq!(strip_times(&a), strip_times(&b));
    let j = Json::parse(&a).expect("chrome export is valid JSON");
    assert_eq!(j.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
    let events = j.get("traceEvents").unwrap().as_arr().unwrap();
    if cfg!(feature = "obs") {
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("run.schedule")),
            "the per-run root span is exported"
        );
    }
}

#[cfg(feature = "obs")]
#[test]
fn chrome_export_matches_the_committed_fixture_modulo_timing() {
    use dagsched::obs::{self, ChromeTrace};
    // A fixed span shape, independent of the corpus RNG: one schedule
    // root over two phases, exported on two tracks.
    let fixture_stats = || {
        let scope = obs::run_scope();
        {
            let _run = obs::span!("run.schedule");
            {
                let _a = obs::span!("phase.cluster");
            }
            {
                let _b = obs::span!("phase.order");
            }
        }
        scope.finish()
    };
    let mut trace = ChromeTrace::new();
    trace.add_run("DSC", "g0", &fixture_stats());
    trace.add_run("HU", "g0", &fixture_stats());
    trace.add_run("DSC", "g1", &fixture_stats());
    let got = trace.finish();
    let fixture = include_str!("snapshots/chrome_trace.fixture.json");
    assert_eq!(strip_times(&got), strip_times(fixture.trim_end()));
}

#[test]
fn strip_ns_touches_only_ns_values() {
    assert_eq!(
        strip_ns(r#"{"name":"x","calls":2,"ns":91827}, {"ns":4}"#),
        r#"{"name":"x","calls":2,"ns":0}, {"ns":0}"#
    );
    assert_eq!(strip_ns("no timing here"), "no timing here");
}
