//! Differential suite for the `DagAnalysis` cache: every heuristic
//! must emit a byte-identical schedule whether it runs against a cold
//! graph (fresh clone, labellings recomputed from scratch) or a warm
//! one (all labellings pre-materialized by [`Dag::warm_analysis`] and
//! shared across heuristics) — over the torture corpus and a
//! 100-graph random sample.
//!
//! This is the safety net behind the cache refactor: the accessors on
//! `Dag` may only ever *memoize* the `levels`/`Closure` reference
//! computations, never change their results.

use dagsched::core::{all_heuristics, paper_heuristics};
use dagsched::dag::closure::Closure;
use dagsched::dag::{levels, Dag};
use dagsched::experiments::corpus::{generate_corpus, CorpusSpec};
use dagsched::gen::torture_corpus;
use dagsched::sim::{validate, Clique, Schedule};

/// The 100-graph random sample: small nodes so the full differential
/// sweep stays in test-suite time, everything else at paper defaults.
fn random_sample() -> Vec<Dag> {
    let spec = CorpusSpec {
        graphs_per_set: 2,
        nodes: 12..=24,
        ..Default::default()
    };
    generate_corpus(&spec)
        .into_iter()
        .map(|e| e.graph)
        .take(100)
        .collect()
}

/// Schedules `g` with every heuristic in the registry `make`, cold:
/// each heuristic gets its own fresh clone (clones start with an
/// empty cache), so every labelling is recomputed per heuristic —
/// exactly the seed behaviour before the cache existed.
fn cold_schedules(g: &Dag, names: &mut Vec<&'static str>) -> Vec<Schedule> {
    all_heuristics()
        .into_iter()
        .map(|h| {
            names.push(h.name());
            let fresh = g.clone();
            h.schedule(&fresh, &Clique)
        })
        .collect()
}

/// Schedules `g` with every heuristic against ONE shared, pre-warmed
/// graph: all labellings come out of the cache.
fn warm_schedules(g: &Dag) -> Vec<Schedule> {
    g.warm_analysis();
    all_heuristics()
        .into_iter()
        .map(|h| h.schedule(g, &Clique))
        .collect()
}

#[test]
fn cached_schedules_match_uncached_on_the_torture_corpus() {
    for case in torture_corpus() {
        let mut names = Vec::new();
        let cold = cold_schedules(&case.graph, &mut names);
        let warm = warm_schedules(&case.graph);
        for ((name, c), w) in names.iter().zip(&cold).zip(&warm) {
            assert_eq!(c, w, "{name} diverged on torture case {}", case.name);
            assert!(validate::is_valid(&case.graph, &Clique, w));
        }
    }
}

#[test]
fn cached_schedules_match_uncached_on_a_random_sample() {
    let sample = random_sample();
    assert_eq!(sample.len(), 100, "sample size is part of the contract");
    for (i, g) in sample.iter().enumerate() {
        let mut names = Vec::new();
        let cold = cold_schedules(g, &mut names);
        let warm = warm_schedules(g);
        for ((name, c), w) in names.iter().zip(&cold).zip(&warm) {
            assert_eq!(c, w, "{name} diverged on sample graph {i}");
        }
    }
}

#[test]
fn warm_order_does_not_leak_between_heuristics() {
    // Run the five paper heuristics twice over the SAME warm graph in
    // opposite orders: cached state must be order-independent.
    for g in random_sample().into_iter().step_by(20) {
        g.warm_analysis();
        let forward: Vec<Schedule> = paper_heuristics()
            .into_iter()
            .map(|h| h.schedule(&g, &Clique))
            .collect();
        let mut backward: Vec<Schedule> = paper_heuristics()
            .into_iter()
            .rev()
            .map(|h| h.schedule(&g, &Clique))
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }
}

#[test]
fn cached_labellings_equal_the_reference_functions() {
    // The accessors memoize the `levels` free functions and `Closure`
    // — spot-check value equality and memoization (stable addresses)
    // on a slice of the sample plus the adversarial extremes.
    let mut graphs: Vec<Dag> = random_sample().into_iter().step_by(10).collect();
    graphs.extend(torture_corpus().into_iter().map(|c| c.graph));
    for g in &graphs {
        assert_eq!(g.blevels_with_comm(), levels::blevels_with_comm(g));
        assert_eq!(g.blevels_computation(), levels::blevels_computation(g));
        assert_eq!(g.tlevels_with_comm(), levels::tlevels_with_comm(g));
        assert_eq!(g.tlevels_computation(), levels::tlevels_computation(g));
        assert_eq!(g.alap_times(), levels::alap_times(g));
        assert_eq!(g.slacks(), levels::slacks(g));
        assert_eq!(g.critical_path(), levels::critical_path(g));
        assert_eq!(g.critical_path_len(), levels::critical_path_len(g));
        assert_eq!(
            g.critical_path_len_computation(),
            levels::critical_path_len_computation(g)
        );
        // Closure has no cheap Eq; compare reachability on a few pairs.
        let reference = Closure::new(g);
        let cached = g.closure();
        for u in g.nodes().step_by(7) {
            for v in g.nodes().step_by(5) {
                assert_eq!(cached.reaches(u, v), reference.reaches(u, v));
            }
        }
        // Second call returns the same allocation: the cache hit path.
        assert!(std::ptr::eq(g.blevels_with_comm(), g.blevels_with_comm()));
        assert!(std::ptr::eq(g.closure(), g.closure()));
    }
}

#[test]
fn clones_start_cold_and_converge_to_the_same_values() {
    let g = random_sample().into_iter().next().unwrap();
    g.warm_analysis();
    assert!(!g.warm_labellings().is_empty());
    let clone = g.clone();
    assert!(
        clone.warm_labellings().is_empty(),
        "clones must not share cache state"
    );
    assert_eq!(clone.blevels_with_comm(), g.blevels_with_comm());
    assert_eq!(clone.critical_path_len(), g.critical_path_len());
}

#[test]
fn empty_graph_analysis_is_well_defined() {
    let g = dagsched::dag::DagBuilder::new().build().unwrap();
    g.warm_analysis();
    assert!(g.blevels_with_comm().is_empty());
    assert!(g.critical_path().is_empty());
    assert_eq!(g.critical_path_len(), 0);
    for h in all_heuristics() {
        assert_eq!(h.schedule(&g, &Clique).makespan(), 0);
    }
}
