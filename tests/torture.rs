//! Torture-corpus differential suite: every heuristic, on every
//! adversarial graph, must come back with an oracle-valid schedule —
//! and when a scheduler *is* broken (the chaos trio), the harness must
//! contain the fault and still complete the run.
//!
//! Probes run through [`RobustScheduler::bare`], so a panic or an
//! oracle violation surfaces as a structured incident (with the graph
//! fingerprint and fault) instead of aborting the test binary.

use dagsched::core::all_heuristics;
use dagsched::gen::torture_corpus;
use dagsched::harness::chaos::{InvalidScheduler, PanicScheduler, SleepyScheduler};
use dagsched::harness::{Incident, RobustScheduler, SERIAL_PLACEMENT};
use dagsched::sim::{validate, BoundedClique, Clique, Machine};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn clique() -> Arc<dyn Machine> {
    Arc::new(Clique)
}

fn summaries(incidents: &[Incident]) -> String {
    incidents
        .iter()
        .map(Incident::summary)
        .collect::<Vec<_>>()
        .join("; ")
}

#[test]
fn every_heuristic_survives_every_torture_graph() {
    // Bare probe: no fallbacks, oracle gate on. A clean pass means the
    // heuristic itself produced a valid schedule; any panic or
    // violation fails the test with the full incident report.
    for case in torture_corpus() {
        for h in all_heuristics() {
            let name = h.name();
            let robust = RobustScheduler::bare(Arc::from(h));
            let out = robust.run(&case.graph, &clique());
            assert!(
                out.incidents.is_empty(),
                "{name} faulted on {}: {}",
                case.name,
                summaries(&out.incidents)
            );
            assert_eq!(out.scheduled_by, name, "on {}", case.name);
            assert!(
                validate::is_valid(&case.graph, &Clique, &out.schedule),
                "{name} invalid on {}",
                case.name
            );
        }
    }
}

#[test]
fn fallback_chain_completes_every_torture_run_valid() {
    // A primary that always faults forces the chain to engage on every
    // graph, on an unbounded and a 2-processor machine.
    let machines: Vec<Arc<dyn Machine>> = vec![Arc::new(Clique), Arc::new(BoundedClique::new(2))];
    for case in torture_corpus() {
        for machine in &machines {
            let robust = RobustScheduler::wrap(PanicScheduler);
            let out = robust.run(&case.graph, machine);
            assert!(out.fell_back(), "chaos must fault on {}", case.name);
            assert_eq!(out.incidents[0].fault.kind(), "panic");
            assert_eq!(out.incidents[0].resolved_by, Some(out.scheduled_by));
            assert!(
                validate::is_valid(&case.graph, machine.as_ref(), &out.schedule),
                "fallback schedule invalid on {} under {}",
                case.name,
                machine.name()
            );
        }
    }
}

#[test]
fn exhausted_chains_degrade_to_serial_placement_everywhere() {
    for case in torture_corpus() {
        let robust = RobustScheduler::bare(Arc::new(PanicScheduler));
        let out = robust.run(&case.graph, &clique());
        assert_eq!(out.scheduled_by, SERIAL_PLACEMENT, "on {}", case.name);
        assert_eq!(out.schedule.makespan(), case.graph.serial_time());
        assert!(validate::is_valid(&case.graph, &Clique, &out.schedule));
    }
}

#[test]
fn forced_faults_are_contained_as_incidents() {
    let case = torture_corpus()
        .into_iter()
        .find(|c| c.name == "dense-complete")
        .expect("corpus has the dense graph");
    let g = case.graph;
    let machine = clique();

    // A panicking scheduler: contained, resolved by HU.
    let out = RobustScheduler::wrap(PanicScheduler).run(&g, &machine);
    assert_eq!(out.incidents.len(), 1);
    assert_eq!(out.incidents[0].fault.kind(), "panic");
    assert_eq!(out.scheduled_by, "HU");
    assert!(validate::is_valid(&g, &Clique, &out.schedule));

    // An invalid schedule: rejected by the oracle gate.
    let out = RobustScheduler::wrap(InvalidScheduler).run(&g, &machine);
    assert_eq!(out.incidents.len(), 1);
    assert_eq!(out.incidents[0].fault.kind(), "invalid-schedule");
    assert_eq!(out.scheduled_by, "HU");
    assert!(validate::is_valid(&g, &Clique, &out.schedule));

    // A hung scheduler: abandoned by the watchdog well before its
    // 10-second nap ends.
    let robust = RobustScheduler::wrap(SleepyScheduler {
        delay: Duration::from_secs(10),
    })
    .with_time_budget(Duration::from_millis(50));
    let start = Instant::now();
    let out = robust.run(&g, &machine);
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "watchdog did not abandon the sleeper"
    );
    assert_eq!(out.incidents[0].fault.kind(), "deadline-exceeded");
    assert_eq!(out.scheduled_by, "HU");
    assert!(validate::is_valid(&g, &Clique, &out.schedule));
}

#[test]
fn supervised_pool_contains_chaos_per_item() {
    use dagsched::par::par_map_supervised;
    // Sweep the torture corpus through the supervised worker pool,
    // poisoning every third slot: each panic must stay contained to
    // its own slot while every healthy slot still schedules its graph
    // with every heuristic and validates against the oracle.
    let cases = torture_corpus();
    let out = par_map_supervised(&cases, |i, case| {
        if i % 3 == 0 {
            panic!("chaos in slot {i}: {}", case.name);
        }
        all_heuristics()
            .into_iter()
            .map(|h| {
                let s = h.schedule(&case.graph, &Clique);
                assert!(
                    validate::is_valid(&case.graph, &Clique, &s),
                    "{} invalid on {}",
                    h.name(),
                    case.name
                );
                s.makespan()
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(out.len(), cases.len());
    let heuristic_count = all_heuristics().len();
    for (i, slot) in out.iter().enumerate() {
        match slot {
            Ok(makespans) => {
                assert!(i % 3 != 0, "slot {i} should have panicked");
                assert_eq!(makespans.len(), heuristic_count);
            }
            Err(p) => {
                assert_eq!(i % 3, 0, "unexpected panic in slot {i}: {p}");
                assert_eq!(p.index, i);
                assert!(p.message.contains(&format!("chaos in slot {i}")), "{p}");
            }
        }
    }
}

#[test]
fn torture_outcomes_are_deterministic() {
    let run = || {
        let mut lines = Vec::new();
        for case in torture_corpus() {
            let robust = RobustScheduler::wrap(InvalidScheduler);
            let out = robust.run(&case.graph, &clique());
            lines.push(format!(
                "{}: by {} makespan {} [{}]",
                case.name,
                out.scheduled_by,
                out.schedule.makespan(),
                summaries(&out.incidents)
            ));
        }
        lines
    };
    assert_eq!(run(), run());
}
