//! A miniature of the paper's Figure 2: generate random PDGs in each
//! granularity band and plot average speedup per heuristic.
//!
//! ```text
//! cargo run --release --example granularity_sweep
//! ```

use dagsched::core::paper_heuristics;
use dagsched::gen::pdg::{generate, PdgSpec};
use dagsched::gen::{GranularityBand, WeightRange};
use dagsched::sim::{metrics, Clique};
use rand::rngs::StdRng;
use rand::SeedableRng;

const GRAPHS_PER_BAND: usize = 8;

fn main() {
    let heuristics = paper_heuristics();
    println!(
        "{:<16}{}",
        "band",
        heuristics
            .iter()
            .map(|h| format!("{:>8}", h.name()))
            .collect::<String>()
    );

    let mut rng = StdRng::seed_from_u64(2026);
    for band in GranularityBand::ALL {
        let mut sums = vec![0.0; heuristics.len()];
        for _ in 0..GRAPHS_PER_BAND {
            let g = generate(
                &PdgSpec {
                    nodes: 60,
                    anchor: 3,
                    weights: WeightRange::new(20, 100),
                    band,
                },
                &mut rng,
            )
            .expect("sweep spec is valid");
            for (i, h) in heuristics.iter().enumerate() {
                let s = h.schedule(&g, &Clique);
                sums[i] += metrics::measures(&g, &s).speedup;
            }
        }
        let row: String = sums
            .iter()
            .map(|s| format!("{:>8.2}", s / GRAPHS_PER_BAND as f64))
            .collect();
        println!("{:<16}{row}", band.label());
    }

    println!();
    println!("Speedup grows with granularity for every heuristic (the");
    println!("paper's Figure 2); CLANS leads in the finest band, HU trails");
    println!("everywhere.");
}
