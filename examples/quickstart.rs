//! Quickstart: schedule one PDG with all five heuristics of the paper
//! and eyeball the results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dagsched::core::{paper_heuristics, Scheduler};
use dagsched::dag::{levels, metrics as graph_metrics};
use dagsched::sim::{gantt, metrics, validate, Clique};

fn main() {
    // The worked example from the paper's appendix: 5 tasks, weights
    // 10..50, serial time 150.
    let g = dagsched::core::fixtures::fig16();

    println!("graph: {} tasks, {} edges", g.num_nodes(), g.num_edges());
    println!("serial time: {}", g.serial_time());
    println!(
        "critical path (with comm): {}",
        levels::critical_path_len(&g)
    );
    println!("granularity: {:.3}", graph_metrics::granularity(&g));
    println!();

    for h in paper_heuristics() {
        let schedule = h.schedule(&g, &Clique);
        assert!(validate::is_valid(&g, &Clique, &schedule));
        let m = metrics::measures(&g, &schedule);
        println!(
            "{:<6} parallel time {:>4}   speedup {:.2}   efficiency {:.2}   {} processor(s)",
            h.name(),
            m.parallel_time,
            m.speedup,
            m.efficiency,
            m.procs
        );
        print!("{}", gantt::render(&schedule, 50));
        println!();
    }

    // The paper's Figure 16 (C): CLANS completes in parallel time 130.
    let clans = dagsched::core::Clans.schedule(&g, &Clique);
    assert_eq!(clans.makespan(), 130);
    println!("CLANS reproduces the paper's 130-unit schedule ✓");
}
