//! Scheduling Gaussian elimination task graphs — the kind of
//! parallelized numerical kernel the paper's introduction motivates.
//!
//! Sweeps the matrix size and the communication weight (i.e. the
//! granularity) and prints, for every heuristic, the speedup it
//! extracts. Watch CLANS refuse to parallelize when communication
//! dominates while the list/critical-path heuristics retard execution.
//!
//! ```text
//! cargo run --release --example gaussian_elimination
//! ```

use dagsched::core::paper_heuristics;
use dagsched::dag::metrics as graph_metrics;
use dagsched::gen::families::gaussian_elimination;
use dagsched::sim::{metrics, validate, Clique};

fn main() {
    let heuristics = paper_heuristics();

    println!(
        "{:>4} {:>6} {:>12} {}",
        "n",
        "comm",
        "granularity",
        heuristics
            .iter()
            .map(|h| format!("{:>8}", h.name()))
            .collect::<String>()
    );

    for n in [6usize, 10, 14] {
        for comm in [1u64, 40, 400] {
            let g = gaussian_elimination(n, 4, comm);
            let gran = graph_metrics::granularity(&g);
            let mut row = format!("{:>4} {:>6} {:>12.3}", n, comm, gran);
            for h in &heuristics {
                let s = h.schedule(&g, &Clique);
                assert!(validate::is_valid(&g, &Clique, &s));
                let m = metrics::measures(&g, &s);
                row.push_str(&format!("{:>8.2}", m.speedup));
            }
            println!("{row}");
        }
    }

    println!();
    println!("CLANS never drops below speedup 1.00; the others may, once");
    println!("communication (comm) outweighs the task weights.");
}
