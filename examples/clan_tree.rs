//! Clan decomposition up close: parse a PDG into its clan tree, print
//! the structure, verify it against the clan definition, and export
//! Graphviz for both the graph and the tree.
//!
//! ```text
//! cargo run --example clan_tree
//! ```

use dagsched::clans::{verify, ClanKind, ParseTree};
use dagsched::dag::dot;
use dagsched::gen::families;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The paper's Figure 16 graph.
    let g = dagsched::core::fixtures::fig16();
    let tree = ParseTree::decompose(&g);
    println!("Figure 16 graph parses to: {}", tree.render());
    println!("  (the paper's C3 = linear(1, C2 = independent(2, C1 = linear(3,4)), 5))");
    let (lin, ind, prim) = tree.kind_counts();
    println!("  {lin} linear, {ind} independent, {prim} primitive clans\n");
    assert!(verify::check_tree(&g, &tree).is_empty());

    // 2. A structured kernel: fork-join nests linear over independent.
    let fj = families::fork_join(4, 10, 2);
    println!("fork-join(4): {}", ParseTree::decompose(&fj).render());

    // 3. A wavefront stencil is *primitive*-heavy — no series-parallel
    //    structure to exploit.
    let st = families::stencil(3, 3, 5, 2);
    let st_tree = ParseTree::decompose(&st);
    println!("stencil(3x3): {}", st_tree.render());
    let prim_count = st_tree
        .clan_ids()
        .filter(|&c| st_tree.clan(c).kind == ClanKind::Primitive)
        .count();
    println!("  contains {prim_count} primitive clan(s)\n");

    // 4. Random layered graphs fall between the extremes.
    let mut rng = StdRng::seed_from_u64(3);
    let lr = families::layered_random(4, 4, 2, (20, 100), (1, 40), &mut rng);
    let lr_tree = ParseTree::decompose(&lr);
    println!(
        "layered_random(4x4): height-{} tree over {} clans",
        lr_tree.height(),
        lr_tree.num_clans()
    );
    assert!(verify::check_tree(&lr, &lr_tree).is_empty());

    // 5. Graphviz output for external rendering.
    println!("\n--- fig16 graph (DOT) ---\n{}", dot::to_dot(&g, "fig16"));
    println!("--- fig16 parse tree (DOT) ---\n{}", tree.to_dot());
}
