//! Robustness of static schedules to runtime estimate errors — an
//! extension experiment in the direction of the paper's §5 call for
//! "DAGs generated from real serial programs" (whose task times are
//! never exactly the estimates).
//!
//! Each heuristic schedules the same random PDGs; the discrete-event
//! simulator then *executes* the frozen decisions with perturbed task
//! weights (each scaled by a random factor in [0.5, 2.0]) and reports
//! how much the realized makespan degrades relative to the analytic
//! one.
//!
//! The second half turns to *implementation* robustness: every run
//! goes through the fault-isolation harness, and three deliberately
//! broken schedulers (panic / invalid schedule / deadline overrun)
//! show containment and the fallback chain in action.
//!
//! ```text
//! cargo run --release --example robustness
//! ```

use dagsched::core::{paper_heuristics, Scheduler};
use dagsched::gen::pdg::{generate, PdgSpec};
use dagsched::gen::{GranularityBand, WeightRange};
use dagsched::harness::chaos::{InvalidScheduler, PanicScheduler, SleepyScheduler};
use dagsched::harness::RobustScheduler;
use dagsched::sim::{event, metrics, Clique, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const GRAPHS: usize = 10;
const TRIALS: usize = 20;

fn main() {
    let heuristics = paper_heuristics();
    let mut rng = StdRng::seed_from_u64(424242);

    println!(
        "{:<8}{:>14}{:>18}{:>18}",
        "heur", "mean speedup", "perturbed mean", "mean degradation"
    );

    let mut graphs = Vec::new();
    for _ in 0..GRAPHS {
        graphs.push(
            generate(
                &PdgSpec {
                    nodes: 50,
                    anchor: 3,
                    weights: WeightRange::new(20, 100),
                    band: GranularityBand::Coarse,
                },
                &mut rng,
            )
            .expect("robustness spec is valid"),
        );
    }

    for h in &heuristics {
        let mut nominal_speedup = 0.0;
        let mut perturbed_speedup = 0.0;
        let mut degradation = 0.0;
        let mut samples = 0.0;
        for g in &graphs {
            let s = h.schedule(g, &Clique);
            let m = metrics::measures(g, &s);
            nominal_speedup += m.speedup;
            for _ in 0..TRIALS {
                // Perturb every task weight by a factor in [0.5, 2.0].
                let actual: Vec<u64> = g
                    .node_weights()
                    .iter()
                    .map(|&w| ((w as f64) * rng.gen_range(0.5..2.0)).round().max(1.0) as u64)
                    .collect();
                let serial: u64 = actual.iter().sum();
                let r = event::simulate(g, &Clique, &s, Some(&actual));
                perturbed_speedup += serial as f64 / r.makespan as f64;
                degradation += r.makespan as f64 / s.makespan() as f64;
                samples += 1.0;
            }
        }
        println!(
            "{:<8}{:>14.2}{:>18.2}{:>17.1}%",
            h.name(),
            nominal_speedup / GRAPHS as f64,
            perturbed_speedup / samples,
            (degradation / samples - 1.0) * 100.0
        );
    }

    println!();
    println!("Heuristics that spread work across more processors expose more");
    println!("cross-processor edges, so estimate errors hurt them more.");

    // --- Part two: implementation robustness -------------------------
    // The same graphs, but every run goes through the fault-isolation
    // harness: panics are contained, schedules are oracle-gated, and a
    // deadline is enforced by a watchdog. Three deliberately broken
    // schedulers demonstrate the fallback chain.
    println!();
    println!("fault isolation (budget 250ms, oracle gating on):");
    let machine: Arc<dyn Machine> = Arc::new(Clique);
    let budget = Duration::from_millis(250);
    let g = &graphs[0];

    let mut wrapped: Vec<RobustScheduler> = paper_heuristics()
        .into_iter()
        .map(|h| RobustScheduler::new(Arc::from(h)).with_time_budget(budget))
        .collect();
    wrapped.push(RobustScheduler::wrap(PanicScheduler).with_time_budget(budget));
    wrapped.push(RobustScheduler::wrap(InvalidScheduler).with_time_budget(budget));
    wrapped.push(
        RobustScheduler::wrap(SleepyScheduler {
            delay: Duration::from_secs(30),
        })
        .with_time_budget(budget),
    );

    for robust in &wrapped {
        let out = robust.run(g, &machine);
        println!(
            "  {:<14} -> scheduled by {:<7} makespan {:>6}  incidents {}",
            robust.name(),
            out.scheduled_by,
            out.schedule.makespan(),
            out.incidents.len()
        );
        for incident in &out.incidents {
            println!("      {}", incident.summary());
        }
    }

    println!();
    println!("The three CHAOS schedulers fault every time; the harness");
    println!("contains each fault as an incident and the fallback chain");
    println!("(heuristic -> HU -> SERIAL) still completes every run with");
    println!("an oracle-valid schedule.");
}
