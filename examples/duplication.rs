//! Task duplication and meta-scheduling — two extensions in the
//! directions the paper points at.
//!
//! Assumption 3 of the paper forbids duplication in its five-way
//! comparison while citing the duplication literature ([2, 12, 16]).
//! This example lifts that assumption: DSH re-executes dominant
//! predecessors locally instead of waiting for their messages, and
//! wins exactly where the paper's heuristics suffer — heavy
//! communication. The `SELECT` meta-scheduler then shows the paper's
//! §5.2 compiler scenario: pick the scheduler by the measured
//! granularity.
//!
//! ```text
//! cargo run --release --example duplication
//! ```

use dagsched::core::{BandSelector, BestOf, Dsh, Mh, Scheduler};
use dagsched::dag::metrics as gmetrics;
use dagsched::gen::families;
use dagsched::sim::Clique;

fn main() {
    println!("fork-join(8) under growing communication:");
    println!(
        "{:>6} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "comm", "granularity", "serial", "MH", "DSH", "copies"
    );
    for comm in [1u64, 10, 100, 1000] {
        let g = families::fork_join(8, 20, comm);
        let serial = g.serial_time();
        let mh = Mh.schedule(&g, &Clique);
        let dsh = Dsh.schedule(&g, &Clique);
        assert!(dsh.check(&g, &Clique).is_empty());
        println!(
            "{:>6} {:>12.3} {:>8} {:>8} {:>8} {:>8}",
            comm,
            gmetrics::granularity(&g),
            serial,
            mh.makespan(),
            dsh.makespan(),
            dsh.total_copies()
        );
    }
    println!();
    println!("DSH holds the fork parallel by re-running the source on");
    println!("every processor once messages get expensive; MH falls back");
    println!("to serialization.");
    println!();

    // The compiler scenario: SELECT dispatches by granularity and
    // tracks the winner; BEST-OF is the oracle.
    println!("scheduler selection on kernels (makespans):");
    println!(
        "{:>16} {:>10} {:>10} {:>10}",
        "kernel", "SELECT", "BEST-OF", "serial"
    );
    for comm in [2u64, 250] {
        for (name, g) in [
            (
                format!("gauss10/c{comm}"),
                families::gaussian_elimination(10, 3, comm),
            ),
            (
                format!("stencil6x6/c{comm}"),
                families::stencil(6, 6, 10, comm),
            ),
        ] {
            let select = BandSelector::default().schedule(&g, &Clique);
            let best = BestOf::paper().schedule(&g, &Clique);
            println!(
                "{:>16} {:>10} {:>10} {:>10}",
                name,
                select.makespan(),
                best.makespan(),
                g.serial_time()
            );
            assert!(select.makespan() <= g.serial_time().max(best.makespan()));
        }
    }
}
