//! Implementation of the `dagsched` command-line tool: schedule a PDG
//! from the plain-text format with any heuristic in the workspace.
//!
//! ```text
//! dagsched [options] <graph.pdg | ->
//!
//! options:
//!   --heuristic <NAME>   CLANS|DSC|MCP|MH|HU|ETF|HLFET|DLS|LC|SARKAR|SERIAL|all
//!                        (default: all — compares every heuristic)
//!   --machine <KIND>     clique | ring:<N> | mesh:<R>x<C> | hypercube:<D>
//!                        | bounded:<P>        (default: clique)
//!   --gantt <WIDTH>      print an ASCII Gantt chart (default on, width 60)
//!   --analyze            print a schedule analysis per heuristic
//!   --svg                print the schedule as an SVG document
//!   --dot                also print the graph as Graphviz DOT
//!   --stg <W>            input is STG (Standard Task Graph Set)
//!                        format; every edge gets weight W
//!   --quiet              metrics only, one line per heuristic
//!   --validate           fault-isolated run: contain panics, gate
//!                        every schedule through the oracle, fall back
//!                        (heuristic → HU → SERIAL) on faults and
//!                        print incident reports instead of aborting
//!   --time-budget <MS>   abandon any attempt exceeding MS
//!                        milliseconds (implies --validate)
//!   --trace-out <PATH>   write one JSONL telemetry record per
//!                        heuristic run to PATH
//!   --metrics            append the instrumentation summary to the
//!                        output
//! ```
//!
//! The logic lives here (library-testable); `src/bin/dagsched.rs` is a
//! thin wrapper.

use crate::core::{all_heuristics, Scheduler};
use crate::dag::{metrics as gmetrics, textio, Dag};
use crate::harness::{HarnessConfig, RobustScheduler};
use crate::obs;
use crate::obs::{GraphMeta, IncidentMeta, RunRecord, Summary, TelemetrySink};
use crate::sim::{
    gantt, metrics, validate, BoundedClique, Clique, Hypercube, Machine, Mesh2D, Ring,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Parsed command line.
#[derive(Debug)]
pub struct CliOptions {
    /// Heuristic name or `"all"`.
    pub heuristic: String,
    /// Machine specification string.
    pub machine: String,
    /// Gantt chart width (0 disables).
    pub gantt_width: usize,
    /// Also print DOT.
    pub dot: bool,
    /// Print a schedule analysis per heuristic.
    pub analyze: bool,
    /// Print each schedule as SVG.
    pub svg: bool,
    /// Parse input as STG with this uniform edge weight.
    pub stg_edge_weight: Option<u64>,
    /// Metrics only.
    pub quiet: bool,
    /// Run fault-isolated (panic containment, oracle gate, fallback
    /// chain) instead of aborting on a faulty heuristic.
    pub validate: bool,
    /// Wall-clock budget per scheduling attempt, in milliseconds
    /// (implies `validate`).
    pub time_budget_ms: Option<u64>,
    /// Write one JSONL telemetry record per heuristic run here.
    pub trace_out: Option<String>,
    /// Append the instrumentation summary to the output.
    pub metrics: bool,
    /// Input path (`-` = stdin).
    pub input: String,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            heuristic: "all".into(),
            machine: "clique".into(),
            gantt_width: 60,
            dot: false,
            analyze: false,
            svg: false,
            stg_edge_weight: None,
            quiet: false,
            validate: false,
            time_budget_ms: None,
            trace_out: None,
            metrics: false,
            input: "-".into(),
        }
    }
}

/// Parses argv (without the program name).
pub fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions::default();
    let mut input: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--heuristic" => {
                opts.heuristic = it.next().ok_or("--heuristic needs a name")?.to_uppercase();
                if opts.heuristic == "ALL" {
                    opts.heuristic = "all".into();
                }
            }
            "--machine" => {
                opts.machine = it.next().ok_or("--machine needs a kind")?.to_lowercase();
            }
            "--gantt" => {
                opts.gantt_width = it
                    .next()
                    .ok_or("--gantt needs a width")?
                    .parse()
                    .map_err(|_| "bad --gantt width")?;
            }
            "--dot" => opts.dot = true,
            "--analyze" => opts.analyze = true,
            "--svg" => opts.svg = true,
            "--stg" => {
                let w = it
                    .next()
                    .ok_or("--stg needs an edge weight")?
                    .parse()
                    .map_err(|_| "bad --stg edge weight")?;
                opts.stg_edge_weight = Some(w);
            }
            "--quiet" => opts.quiet = true,
            "--validate" => opts.validate = true,
            "--time-budget" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--time-budget needs milliseconds")?
                    .parse()
                    .map_err(|_| "bad --time-budget value")?;
                if ms == 0 {
                    return Err("--time-budget must be positive".into());
                }
                opts.time_budget_ms = Some(ms);
            }
            "--trace-out" => {
                opts.trace_out = Some(it.next().ok_or("--trace-out needs a path")?.to_string());
            }
            "--metrics" => opts.metrics = true,
            "--help" | "-h" => return Err("help".into()),
            other if !other.starts_with('-') || other == "-" => {
                if input.replace(other.to_string()).is_some() {
                    return Err("multiple input files given".into());
                }
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    opts.input = input.ok_or("missing input file (use - for stdin)")?;
    Ok(opts)
}

/// Builds the machine from its specification string.
pub fn parse_machine(spec: &str) -> Result<Box<dyn Machine>, String> {
    if spec == "clique" {
        return Ok(Box::new(Clique));
    }
    if let Some(n) = spec.strip_prefix("ring:") {
        let n: usize = n.parse().map_err(|_| "bad ring size")?;
        if n == 0 {
            return Err("ring size must be positive".into());
        }
        return Ok(Box::new(Ring::new(n)));
    }
    if let Some(rc) = spec.strip_prefix("mesh:") {
        let (r, c) = rc.split_once('x').ok_or("mesh needs RxC")?;
        let r: usize = r.parse().map_err(|_| "bad mesh rows")?;
        let c: usize = c.parse().map_err(|_| "bad mesh cols")?;
        if r == 0 || c == 0 {
            return Err("mesh dims must be positive".into());
        }
        return Ok(Box::new(Mesh2D::new(r, c)));
    }
    if let Some(d) = spec.strip_prefix("hypercube:") {
        let d: u32 = d.parse().map_err(|_| "bad hypercube dim")?;
        if d > 20 {
            return Err("hypercube dim too large".into());
        }
        return Ok(Box::new(Hypercube::new(d)));
    }
    if let Some(p) = spec.strip_prefix("bounded:") {
        let p: usize = p.parse().map_err(|_| "bad processor bound")?;
        if p == 0 {
            return Err("processor bound must be positive".into());
        }
        return Ok(Box::new(BoundedClique::new(p)));
    }
    Err(format!("unknown machine {spec:?}"))
}

/// Selects the heuristics to run.
pub fn select_heuristics(name: &str) -> Result<Vec<Box<dyn Scheduler>>, String> {
    let all = all_heuristics();
    if name == "all" {
        return Ok(all);
    }
    let selected: Vec<Box<dyn Scheduler>> = all.into_iter().filter(|h| h.name() == name).collect();
    if selected.is_empty() {
        Err(format!(
            "unknown heuristic {name:?}; known: CLANS DSC MCP MH HU ETF HLFET DLS LC SARKAR SERIAL"
        ))
    } else {
        Ok(selected)
    }
}

/// Runs the tool against already-loaded graph text; returns the
/// rendered output.
pub fn run_on_text(opts: &CliOptions, text: &str) -> Result<String, String> {
    let g: Dag = match opts.stg_edge_weight {
        Some(w) => crate::dag::stg::parse(text, w).map_err(|e| e.to_string())?,
        None => textio::parse(text).map_err(|e| e.to_string())?,
    };
    let machine: Arc<dyn Machine> = Arc::from(parse_machine(&opts.machine)?);
    let heuristics = select_heuristics(&opts.heuristic)?;
    // Either robustness flag selects the fault-isolated path; the
    // harness always keeps the oracle gate on so everything printed
    // below is a valid schedule either way.
    let harness = (opts.validate || opts.time_budget_ms.is_some()).then(|| HarnessConfig {
        time_budget: opts.time_budget_ms.map(Duration::from_millis),
        validate: true,
    });

    let mut out = String::new();
    if !opts.quiet {
        writeln!(
            out,
            "graph: {} tasks, {} edges, serial time {}, granularity {:.3}, machine {}",
            g.num_nodes(),
            g.num_edges(),
            g.serial_time(),
            gmetrics::granularity(&g),
            machine.name(),
        )
        .unwrap();
    }
    if opts.dot {
        out.push_str(&crate::dag::dot::to_dot(&g, "input"));
    }
    let sink = match &opts.trace_out {
        Some(path) => Some(
            TelemetrySink::to_path(std::path::Path::new(path))
                .map_err(|e| format!("cannot create {path}: {e}"))?,
        ),
        None => None,
    };
    let observe = sink.is_some() || opts.metrics;
    let mut summary = Summary::default();
    for h in heuristics {
        let name = h.name();
        let scope = observe.then(obs::run_scope);
        let span = observe.then(|| obs::span!("run.schedule"));
        let (s, scheduled_by, incidents) = match harness {
            Some(config) => {
                let robust = RobustScheduler::new(Arc::from(h)).with_config(config);
                let r = robust.run(&g, &machine);
                (r.schedule, r.scheduled_by, r.incidents)
            }
            None => {
                let s = h.schedule(&g, machine.as_ref());
                let violations = validate::check(&g, machine.as_ref(), &s);
                if !violations.is_empty() {
                    return Err(format!(
                        "{name} produced an invalid schedule: {violations:?}"
                    ));
                }
                (s, name, Vec::new())
            }
        };
        drop(span);
        let m = metrics::measures(&g, &s);
        if let Some(scope) = scope {
            let record = RunRecord {
                graph: GraphMeta {
                    id: opts.input.clone(),
                    nodes: g.num_nodes() as u64,
                    edges: g.num_edges() as u64,
                    serial_time: Some(g.serial_time()),
                    granularity: Some(gmetrics::granularity(&g)),
                    ..GraphMeta::default()
                },
                heuristic: name.to_string(),
                scheduled_by: Some(scheduled_by.to_string()),
                ok: true,
                processors: Some(m.procs as u64),
                makespan: Some(m.parallel_time),
                speedup: m.speedup.is_finite().then_some(m.speedup),
                incidents: incidents
                    .iter()
                    .map(|inc| IncidentMeta {
                        heuristic: inc.heuristic.to_string(),
                        kind: inc.fault.kind().to_string(),
                        summary: inc.summary(),
                    })
                    .collect(),
                stats: scope.finish(),
            };
            if let Some(sink) = &sink {
                sink.emit(&record)
                    .map_err(|e| format!("telemetry write failed: {e}"))?;
            }
            summary.observe(&record);
        }
        writeln!(
            out,
            "{:<7} parallel_time={} speedup={:.3} efficiency={:.3} procs={}",
            name, m.parallel_time, m.speedup, m.efficiency, m.procs
        )
        .unwrap();
        for incident in &incidents {
            writeln!(out, "  incident: {}", incident.summary()).unwrap();
        }
        if opts.analyze {
            let a = crate::sim::analysis::analyze(&g, machine.as_ref(), &s);
            writeln!(out, "  {a}").unwrap();
        }
        if !opts.quiet && opts.gantt_width > 0 {
            out.push_str(&gantt::render(&s, opts.gantt_width));
        }
        if opts.svg {
            out.push_str(&gantt::render_svg(&s));
        }
    }
    if let Some(sink) = &sink {
        sink.emit_summary(&summary)
            .and_then(|()| sink.flush())
            .map_err(|e| format!("telemetry write failed: {e}"))?;
    }
    if opts.metrics && !summary.is_empty() {
        out.push('\n');
        out.push_str(&summary.render());
    }
    Ok(out)
}

/// The usage string printed on `--help` or errors.
pub const USAGE: &str = "usage: dagsched [--heuristic NAME|all] [--machine clique|ring:N|mesh:RxC|hypercube:D|bounded:P] [--gantt WIDTH] [--analyze] [--svg] [--dot] [--stg W] [--quiet] [--validate] [--time-budget MS] [--trace-out PATH] [--metrics] <graph.pdg | ->";

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
nodes 3
node 0 10
node 1 20
node 2 30
edge 0 1 5
edge 0 2 5
";

    fn opts(extra: &[&str]) -> CliOptions {
        let mut args: Vec<String> = extra.iter().map(|s| s.to_string()).collect();
        args.push("-".into());
        parse_args(&args).unwrap()
    }

    #[test]
    fn parse_defaults() {
        let o = opts(&[]);
        assert_eq!(o.heuristic, "all");
        assert_eq!(o.machine, "clique");
        assert_eq!(o.input, "-");
    }

    #[test]
    fn parse_flags() {
        let o = opts(&[
            "--heuristic",
            "dsc",
            "--machine",
            "MESH:2x3",
            "--quiet",
            "--dot",
            "--gantt",
            "0",
        ]);
        assert_eq!(o.heuristic, "DSC");
        assert_eq!(o.machine, "mesh:2x3");
        assert!(o.quiet && o.dot);
        assert_eq!(o.gantt_width, 0);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&[]).is_err()); // no input
        assert!(parse_args(&["--frobnicate".into(), "-".into()]).is_err());
        assert!(parse_args(&["a".into(), "b".into()]).is_err()); // two inputs
    }

    #[test]
    fn machine_parsing() {
        assert_eq!(parse_machine("clique").unwrap().name(), "clique");
        assert_eq!(parse_machine("ring:5").unwrap().max_procs(), Some(5));
        assert_eq!(parse_machine("mesh:2x3").unwrap().max_procs(), Some(6));
        assert_eq!(parse_machine("hypercube:3").unwrap().max_procs(), Some(8));
        assert_eq!(parse_machine("bounded:4").unwrap().max_procs(), Some(4));
        for bad in [
            "nope",
            "ring:0",
            "ring:x",
            "mesh:2",
            "mesh:0x3",
            "bounded:0",
            "hypercube:50",
        ] {
            assert!(parse_machine(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn heuristic_selection() {
        assert_eq!(select_heuristics("all").unwrap().len(), 11);
        assert_eq!(select_heuristics("CLANS").unwrap().len(), 1);
        assert!(select_heuristics("NOPE").is_err());
    }

    #[test]
    fn runs_all_heuristics_on_sample() {
        let o = opts(&["--quiet"]);
        let out = run_on_text(&o, SAMPLE).unwrap();
        for h in ["CLANS", "DSC", "MCP", "MH", "HU", "SARKAR", "SERIAL"] {
            assert!(out.contains(h), "missing {h} in output");
        }
        assert!(out.contains("parallel_time="));
    }

    #[test]
    fn runs_single_heuristic_with_gantt_and_dot() {
        let mut o = opts(&["--heuristic", "clans", "--dot"]);
        o.gantt_width = 30;
        let out = run_on_text(&o, SAMPLE).unwrap();
        assert!(out.contains("digraph input"));
        assert!(out.contains("CLANS"));
        assert!(out.contains("P0"));
        assert!(!out.contains("DSC "));
    }

    #[test]
    fn analyze_and_svg_flags() {
        let o = opts(&["--heuristic", "clans", "--analyze", "--svg", "--gantt", "0"]);
        let out = run_on_text(&o, SAMPLE).unwrap();
        assert!(out.contains("zeroed"));
        assert!(out.contains("<svg"));
        assert!(out.contains("</svg>"));
    }

    #[test]
    fn stg_input_mode() {
        let mut o = opts(&["--quiet"]);
        o.stg_edge_weight = Some(4);
        let stg = "3\n0 10 0\n1 20 1 0\n2 30 1 0\n";
        let out = run_on_text(&o, stg).unwrap();
        assert!(out.contains("CLANS"));
        // The same text is invalid in the native format.
        o.stg_edge_weight = None;
        assert!(run_on_text(&o, stg).is_err());
    }

    #[test]
    fn bad_graph_is_reported() {
        let o = opts(&["--quiet"]);
        let err = run_on_text(&o, "nodes x").unwrap_err();
        assert!(err.contains("invalid node count"));
    }

    #[test]
    fn robustness_flags_parse() {
        let o = opts(&["--validate", "--time-budget", "250"]);
        assert!(o.validate);
        assert_eq!(o.time_budget_ms, Some(250));
        assert!(parse_args(&["--time-budget".into(), "0".into(), "-".into()]).is_err());
        assert!(parse_args(&["--time-budget".into(), "x".into(), "-".into()]).is_err());
    }

    #[test]
    fn harnessed_run_reports_clean_schedules() {
        let o = opts(&["--quiet", "--validate", "--time-budget", "60000"]);
        let out = run_on_text(&o, SAMPLE).unwrap();
        for h in ["CLANS", "DSC", "MCP", "MH", "HU"] {
            assert!(out.contains(h), "missing {h}");
        }
        // Healthy heuristics on a 3-task graph raise no incidents.
        assert!(!out.contains("incident:"));
    }

    #[test]
    fn telemetry_flags_parse() {
        let o = opts(&["--trace-out", "trace.jsonl", "--metrics"]);
        assert_eq!(o.trace_out.as_deref(), Some("trace.jsonl"));
        assert!(o.metrics);
        assert!(parse_args(&["--trace-out".into()]).is_err());
    }

    #[test]
    fn metrics_flag_appends_the_summary() {
        let o = opts(&["--quiet", "--heuristic", "clans", "--metrics"]);
        let out = run_on_text(&o, SAMPLE).unwrap();
        assert!(out.contains("### Instrumentation summary"));
        assert!(out.contains("| CLANS |"));
        // Without the flag the section is absent.
        let plain = run_on_text(&opts(&["--quiet", "--heuristic", "clans"]), SAMPLE).unwrap();
        assert!(!plain.contains("Instrumentation summary"));
    }

    #[test]
    fn trace_out_writes_one_record_per_heuristic() {
        let path =
            std::env::temp_dir().join(format!("dagsched-cli-trace-{}.jsonl", std::process::id()));
        let mut o = opts(&["--quiet", "--validate"]);
        o.trace_out = Some(path.display().to_string());
        run_on_text(&o, SAMPLE).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut runs = 0;
        let mut summaries = 0;
        for line in text.lines() {
            let j = obs::Json::parse(line).expect("every line is valid JSON");
            match j.get("schema").and_then(obs::Json::as_str) {
                Some(s) if s == obs::RUN_SCHEMA => {
                    runs += 1;
                    let graph = j.get("graph").expect("run records carry graph meta");
                    assert_eq!(graph.get("id").unwrap().as_str(), Some("-"));
                    assert_eq!(graph.get("nodes").unwrap().as_u64(), Some(3));
                }
                Some(s) if s == obs::SUMMARY_SCHEMA => summaries += 1,
                other => panic!("unexpected schema {other:?}"),
            }
        }
        let expected = select_heuristics("all").unwrap().len();
        assert_eq!(runs, expected, "one run record per heuristic");
        assert_eq!(summaries, expected, "one summary line per heuristic");
    }

    #[test]
    fn bounded_machine_end_to_end() {
        let o = CliOptions {
            heuristic: "MH".into(),
            machine: "bounded:1".into(),
            quiet: true,
            ..opts(&[])
        };
        let out = run_on_text(&o, SAMPLE).unwrap();
        assert!(out.contains("procs=1"));
    }
}
