//! Implementation of the `dagsched` command-line tool: schedule a PDG
//! from the plain-text format with any heuristic in the workspace.
//!
//! ```text
//! dagsched [options] <graph.pdg | ->
//!
//! options:
//!   --heuristic <NAME>   CLANS|DSC|MCP|MH|HU|ETF|HLFET|DLS|LC|SARKAR|SERIAL|all
//!                        (default: all — compares every heuristic);
//!                        EXACT names the branch-and-bound anchor,
//!                        which is never part of `all`
//!   --machine <KIND>     uniform | clique | ring:<N> | mesh:<R>x<C>
//!                        | hypercube:<D> | bounded:<P>
//!                        | linkaware:<FILE>   (default: clique;
//!                        `uniform` is the paper's §2 model — the same
//!                        semantics as `clique` — and `linkaware`
//!                        reads a per-pair latency/bandwidth table)
//!   --gantt <WIDTH>      print an ASCII Gantt chart (default on, width 60)
//!   --analyze            print a schedule analysis per heuristic
//!   --svg                print the schedule as an SVG document
//!   --dot                also print the graph as Graphviz DOT
//!   --stg <W>            input is STG (Standard Task Graph Set)
//!                        format; every edge gets weight W
//!   --quiet              metrics only, one line per heuristic
//!   --validate           fault-isolated run: contain panics, gate
//!                        every schedule through the oracle, fall back
//!                        (heuristic → HU → SERIAL) on faults and
//!                        print incident reports instead of aborting
//!   --time-budget <MS>   abandon any attempt exceeding MS
//!                        milliseconds (implies --validate)
//!   --trace-out <PATH>   write one JSONL telemetry record per
//!                        heuristic run to PATH
//!   --trace-format <F>   jsonl (default) or chrome: chrome also
//!                        writes the span trees as a Chrome
//!                        trace-event file (Perfetto-loadable) to
//!                        PATH.chrome.json (needs --trace-out)
//!   --metrics            append the instrumentation summary to the
//!                        output
//!   --checkpoint-dir <DIR>  journal every finished heuristic run
//!                        (checksummed JSONL, fsynced) into DIR
//!   --resume <DIR>       replay DIR's journal: heuristics already
//!                        journaled print their stored metrics (and
//!                        incident lines) without re-running; implies
//!                        --checkpoint-dir DIR. Replayed runs skip
//!                        Gantt/SVG/analysis output and telemetry.
//!   --strict             fail (exit non-zero) if any incident was
//!                        contained instead of accepting fallbacks
//!                        (implies --validate)
//!   --replay-quarantine <FILE>  regenerate every graph in a corpus
//!                        quarantine journal (see `repro
//!                        --checkpoint-dir`) and re-run it once under
//!                        the harness; no input graph needed
//!   --remote <ADDR>      submit the graph to a running
//!                        `dagsched-server` at ADDR instead of
//!                        scheduling locally; prints the response in
//!                        the local format plus the answering tier and
//!                        cache provenance (see docs/SERVICE.md)
//!   --server-stats       with --remote: also fetch the server's
//!                        `stats` and print it as aligned tables
//!                        (counters, gauges, histogram quantiles,
//!                        slow-request exemplars); no input graph
//!                        needed
//!   --server-metrics     with --remote: fetch the Prometheus text
//!                        exposition page; no input graph needed
//!   --exact              also solve the graph exactly (branch-and-
//!                        bound, graphs ≤ 20 nodes) and print the
//!                        proof status plus each heuristic's percent
//!                        gap to the optimum
//!   --exact-budget <N>   node budget for the exact search (default
//!                        5000000; implies --exact); exhausting it
//!                        degrades the proof to a `[lower bound,
//!                        incumbent]` bracket
//! ```
//!
//! The logic lives here (library-testable); `src/bin/dagsched.rs` is a
//! thin wrapper.

use crate::core::{
    all_heuristics, fingerprint_machine_key, parse_fingerprint_machine_key, Scheduler,
};
use crate::dag::{metrics as gmetrics, textio, Dag};
use crate::experiments::checkpoint::{
    replay_quarantine, scan_journal, JournalWriter, CHECKPOINT_SCHEMA, JOURNAL_FILE,
};
use crate::harness::{GraphFingerprint, HarnessConfig, RobustScheduler};
use crate::obs;
use crate::obs::json::{write_escaped, write_f64};
use crate::obs::{GraphMeta, IncidentMeta, Json, RunRecord, Summary, TelemetrySink};
use crate::sim::{gantt, metrics, validate, Machine};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Parsed command line.
#[derive(Debug)]
pub struct CliOptions {
    /// Heuristic name or `"all"`.
    pub heuristic: String,
    /// Machine specification string.
    pub machine: String,
    /// Gantt chart width (0 disables).
    pub gantt_width: usize,
    /// Also print DOT.
    pub dot: bool,
    /// Print a schedule analysis per heuristic.
    pub analyze: bool,
    /// Print each schedule as SVG.
    pub svg: bool,
    /// Parse input as STG with this uniform edge weight.
    pub stg_edge_weight: Option<u64>,
    /// Metrics only.
    pub quiet: bool,
    /// Run fault-isolated (panic containment, oracle gate, fallback
    /// chain) instead of aborting on a faulty heuristic.
    pub validate: bool,
    /// Wall-clock budget per scheduling attempt, in milliseconds
    /// (implies `validate`).
    pub time_budget_ms: Option<u64>,
    /// Write one JSONL telemetry record per heuristic run here.
    pub trace_out: Option<String>,
    /// Also write the span trees as a Chrome trace-event file next to
    /// `trace_out` (`--trace-format chrome`).
    pub trace_chrome: bool,
    /// Append the instrumentation summary to the output.
    pub metrics: bool,
    /// Journal finished heuristic runs into this directory.
    pub checkpoint_dir: Option<String>,
    /// Replay the journal in `checkpoint_dir` before running.
    pub resume: bool,
    /// Fail instead of degrading when any incident is contained.
    pub strict: bool,
    /// Replay a corpus quarantine journal instead of scheduling an
    /// input graph.
    pub replay_quarantine: Option<String>,
    /// Submit the graph to a running `dagsched-server` at this address
    /// instead of scheduling locally.
    pub remote: Option<String>,
    /// With `remote`: also fetch and render the server's `stats`.
    pub server_stats: bool,
    /// With `remote`: fetch the Prometheus exposition page.
    pub server_metrics: bool,
    /// Also solve the graph exactly (branch-and-bound) and report
    /// every heuristic's gap to the proven optimum (or to the
    /// `[lower bound, incumbent]` bracket when a budget cuts off).
    pub exact: bool,
    /// Branch-and-bound node budget for `--exact` (implies it).
    pub exact_budget: Option<u64>,
    /// Input path (`-` = stdin).
    pub input: String,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            heuristic: "all".into(),
            machine: "clique".into(),
            gantt_width: 60,
            dot: false,
            analyze: false,
            svg: false,
            stg_edge_weight: None,
            quiet: false,
            validate: false,
            time_budget_ms: None,
            trace_out: None,
            trace_chrome: false,
            metrics: false,
            checkpoint_dir: None,
            resume: false,
            strict: false,
            replay_quarantine: None,
            remote: None,
            server_stats: false,
            server_metrics: false,
            exact: false,
            exact_budget: None,
            input: "-".into(),
        }
    }
}

/// Parses argv (without the program name).
pub fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions::default();
    let mut input: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--heuristic" => {
                opts.heuristic = it.next().ok_or("--heuristic needs a name")?.to_uppercase();
                if opts.heuristic == "ALL" {
                    opts.heuristic = "all".into();
                }
            }
            "--machine" => {
                let kind = it.next().ok_or("--machine needs a kind")?;
                // Keep the case of link-aware table paths intact; bare
                // kinds stay case-insensitive as before.
                opts.machine = if kind.starts_with("linkaware:") {
                    kind.clone()
                } else {
                    kind.to_lowercase()
                };
            }
            "--gantt" => {
                opts.gantt_width = it
                    .next()
                    .ok_or("--gantt needs a width")?
                    .parse()
                    .map_err(|_| "bad --gantt width")?;
            }
            "--dot" => opts.dot = true,
            "--analyze" => opts.analyze = true,
            "--svg" => opts.svg = true,
            "--stg" => {
                let w = it
                    .next()
                    .ok_or("--stg needs an edge weight")?
                    .parse()
                    .map_err(|_| "bad --stg edge weight")?;
                opts.stg_edge_weight = Some(w);
            }
            "--quiet" => opts.quiet = true,
            "--validate" => opts.validate = true,
            "--time-budget" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--time-budget needs milliseconds")?
                    .parse()
                    .map_err(|_| "bad --time-budget value")?;
                if ms == 0 {
                    return Err("--time-budget must be positive".into());
                }
                opts.time_budget_ms = Some(ms);
            }
            "--trace-out" => {
                opts.trace_out = Some(it.next().ok_or("--trace-out needs a path")?.to_string());
            }
            "--trace-format" => {
                match it
                    .next()
                    .ok_or("--trace-format needs jsonl or chrome")?
                    .as_str()
                {
                    "jsonl" => opts.trace_chrome = false,
                    "chrome" => opts.trace_chrome = true,
                    other => return Err(format!("unknown trace format {other:?}")),
                }
            }
            "--metrics" => opts.metrics = true,
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(
                    it.next()
                        .ok_or("--checkpoint-dir needs a directory")?
                        .to_string(),
                );
            }
            "--resume" => {
                opts.checkpoint_dir =
                    Some(it.next().ok_or("--resume needs a directory")?.to_string());
                opts.resume = true;
            }
            "--strict" => opts.strict = true,
            "--replay-quarantine" => {
                opts.replay_quarantine = Some(
                    it.next()
                        .ok_or("--replay-quarantine needs a file")?
                        .to_string(),
                );
            }
            "--remote" => {
                opts.remote = Some(it.next().ok_or("--remote needs an address")?.to_string());
            }
            "--server-stats" => opts.server_stats = true,
            "--server-metrics" => opts.server_metrics = true,
            "--exact" => opts.exact = true,
            "--exact-budget" => {
                let n: u64 = it
                    .next()
                    .ok_or("--exact-budget needs a node count")?
                    .parse()
                    .map_err(|_| "bad --exact-budget value")?;
                if n == 0 {
                    return Err("--exact-budget must be positive".into());
                }
                opts.exact_budget = Some(n);
                opts.exact = true;
            }
            "--help" | "-h" => return Err("help".into()),
            other if !other.starts_with('-') || other == "-" => {
                if input.replace(other.to_string()).is_some() {
                    return Err("multiple input files given".into());
                }
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.replay_quarantine.is_some() && (opts.checkpoint_dir.is_some() || input.is_some()) {
        return Err("--replay-quarantine takes no input graph or checkpoint dir".into());
    }
    if opts.checkpoint_dir.is_some() && opts.trace_out.is_some() {
        return Err("--checkpoint-dir and --trace-out are mutually exclusive".into());
    }
    if opts.trace_chrome && opts.trace_out.is_none() {
        return Err("--trace-format chrome needs --trace-out".into());
    }
    if (opts.server_stats || opts.server_metrics) && opts.remote.is_none() {
        return Err("--server-stats/--server-metrics need --remote".into());
    }
    if opts.exact && opts.remote.is_some() {
        return Err("--exact runs locally; use `--heuristic EXACT` with --remote".into());
    }
    if opts.remote.is_some()
        && (opts.checkpoint_dir.is_some()
            || opts.trace_out.is_some()
            || opts.replay_quarantine.is_some())
    {
        return Err(
            "--remote runs on the server; it takes no local checkpoint, trace or quarantine flags"
                .into(),
        );
    }
    opts.input = match input {
        Some(i) => i,
        // Quarantine replay regenerates its graphs from the journal;
        // no input is read. Server stats/metrics queries are pure
        // control requests, so they need no graph either.
        None if opts.replay_quarantine.is_some() => String::new(),
        None if opts.server_stats || opts.server_metrics => String::new(),
        None => return Err("missing input file (use - for stdin)".into()),
    };
    Ok(opts)
}

/// Builds the machine from its specification string. The grammar is
/// shared with the scheduling server — see
/// [`crate::core::parse_machine`].
pub fn parse_machine(spec: &str) -> Result<Box<dyn Machine>, String> {
    crate::core::parse_machine(spec).map_err(|e| e.to_string())
}

/// Selects the heuristics to run. `EXACT` (the branch-and-bound
/// anchor) is addressable by name but deliberately not part of
/// `all`: it is exponential and budgeted, so it only runs when asked
/// for explicitly.
pub fn select_heuristics(name: &str) -> Result<Vec<Box<dyn Scheduler>>, String> {
    let all = all_heuristics();
    if name == "all" {
        return Ok(all);
    }
    if name == "EXACT" {
        return Ok(vec![Box::new(crate::exact::ExactScheduler::default())]);
    }
    let selected: Vec<Box<dyn Scheduler>> = all.into_iter().filter(|h| h.name() == name).collect();
    if selected.is_empty() {
        Err(format!(
            "unknown heuristic {name:?}; known: CLANS DSC MCP MH HU ETF HLFET DLS LC SARKAR SERIAL EXACT"
        ))
    } else {
        Ok(selected)
    }
}

/// The `kind` field of a CLI journal record (one finished heuristic
/// run; the corpus sweep uses its own kinds — see
/// [`crate::experiments::checkpoint`]).
const CLI_RECORD_KIND: &str = "cli-run";

/// One journaled heuristic run, as replayed on `--resume`.
struct SavedRun {
    parallel_time: u64,
    speedup: f64,
    efficiency: f64,
    procs: usize,
    incidents: Vec<String>,
}

/// The CLI's checkpoint journal: one checksummed, fsynced JSONL record
/// per finished heuristic, keyed by the canonical fingerprint×machine
/// key ([`fingerprint_machine_key`] — the same composition the server
/// cache journals under).
struct CliJournal {
    writer: JournalWriter,
    key: String,
    replayed: HashMap<String, SavedRun>,
}

fn cli_record_body(journal: &CliJournal, heuristic: &str, saved: &SavedRun) -> String {
    let mut s =
        format!("{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"kind\":\"{CLI_RECORD_KIND}\",\"key\":");
    write_escaped(&mut s, &journal.key);
    s.push_str(",\"heuristic\":");
    write_escaped(&mut s, heuristic);
    write!(s, ",\"pt\":{},\"speedup\":", saved.parallel_time).unwrap();
    write_f64(&mut s, saved.speedup);
    s.push_str(",\"eff\":");
    write_f64(&mut s, saved.efficiency);
    write!(s, ",\"procs\":{},\"incidents\":[", saved.procs).unwrap();
    for (i, inc) in saved.incidents.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write_escaped(&mut s, inc);
    }
    s.push_str("]}");
    s
}

fn parse_cli_record(rec: &Json, key: &str) -> Result<(String, SavedRun), String> {
    let field = |k: &str| {
        rec.get(k)
            .ok_or_else(|| format!("journal record missing {k:?}"))
    };
    let kind = field("kind")?.as_str().ok_or("bad kind")?;
    if kind != CLI_RECORD_KIND {
        return Err(format!("unexpected record kind {kind:?} in a CLI journal"));
    }
    let rec_key = field("key")?.as_str().ok_or("bad key")?;
    if rec_key != key {
        // Split both keys so the error names the part that differs:
        // a wrong graph and a wrong machine call for different fixes.
        let (rec_digest, rec_machine) =
            parse_fingerprint_machine_key(rec_key).ok_or_else(|| format!("bad key {rec_key:?}"))?;
        let (digest, machine) = parse_fingerprint_machine_key(key).expect("own key is well-formed");
        if rec_digest != digest {
            return Err(format!(
                "journal belongs to graph {rec_digest:#018x}, the input hashes to {digest:#018x}; \
                 point --resume at the directory of the matching run"
            ));
        }
        return Err(format!(
            "journal was written for machine {rec_machine:?}, this run uses {machine:?}"
        ));
    }
    let heuristic = field("heuristic")?
        .as_str()
        .ok_or("bad heuristic")?
        .to_string();
    let incidents = match field("incidents")?.as_arr() {
        Some(arr) => arr
            .iter()
            .map(|j| j.as_str().map(str::to_string).ok_or("bad incident entry"))
            .collect::<Result<Vec<_>, _>>()?,
        None => return Err("bad incidents".into()),
    };
    let saved = SavedRun {
        parallel_time: field("pt")?.as_u64().ok_or("bad pt")?,
        speedup: field("speedup")?.as_f64().ok_or("bad speedup")?,
        efficiency: field("eff")?.as_f64().ok_or("bad eff")?,
        procs: field("procs")?.as_u64().ok_or("bad procs")? as usize,
        incidents,
    };
    Ok((heuristic, saved))
}

/// Opens (or resumes) the per-graph checkpoint journal in `dir`. A
/// fresh run refuses a directory that already holds records — pass
/// `--resume` to continue one. Resume drops a torn trailing record
/// (its heuristic simply re-runs) but rejects interior damage and
/// journals written for a different graph or machine.
fn open_cli_journal(opts: &CliOptions, dir: &Path, key: String) -> Result<CliJournal, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(JOURNAL_FILE);
    let mut replayed = HashMap::new();
    let writer = if opts.resume {
        let scan = scan_journal(&path).map_err(|e| e.to_string())?;
        for rec in &scan.records {
            let (heuristic, saved) = parse_cli_record(rec, &key)?;
            replayed.insert(heuristic, saved);
        }
        JournalWriter::resume(&path, scan.valid_len)
            .map_err(|e| format!("cannot reopen {}: {e}", path.display()))?
    } else {
        if std::fs::metadata(&path)
            .map(|m| m.len() > 0)
            .unwrap_or(false)
        {
            return Err(format!(
                "{} already holds a journal; pass --resume {} to continue it",
                path.display(),
                dir.display()
            ));
        }
        JournalWriter::create(&path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?
    };
    Ok(CliJournal {
        writer,
        key,
        replayed,
    })
}

/// Replays a corpus quarantine journal (written by `repro
/// --checkpoint-dir`): regenerates every quarantined graph from its
/// recorded seed and runs it once, fault-isolated, with the selected
/// heuristics. With `--strict`, graphs that still fail even under the
/// harness fail the command.
fn run_quarantine_replay(opts: &CliOptions, path: &Path) -> Result<String, String> {
    let heuristics = select_heuristics(&opts.heuristic)?;
    let harness = HarnessConfig {
        time_budget: opts.time_budget_ms.map(Duration::from_millis),
        validate: true,
    };
    let replays = replay_quarantine(path, heuristics, harness).map_err(|e| e.to_string())?;
    let mut out = String::new();
    writeln!(
        out,
        "replaying {} quarantined graph(s) from {}",
        replays.len(),
        path.display()
    )
    .unwrap();
    let mut still_failing = 0usize;
    for r in &replays {
        writeln!(out, "\nquarantined {}", r.record.summary()).unwrap();
        match &r.outcome {
            Ok(result) => {
                for o in &result.outcomes {
                    writeln!(
                        out,
                        "{:<7} parallel_time={} speedup={:.3} efficiency={:.3} procs={}",
                        o.name, o.parallel_time, o.speedup, o.efficiency, o.procs
                    )
                    .unwrap();
                }
                for inc in &r.incidents {
                    writeln!(out, "  incident: {}", inc.summary).unwrap();
                }
            }
            Err(e) => {
                still_failing += 1;
                writeln!(out, "  still failing: {e}").unwrap();
            }
        }
    }
    if opts.strict && still_failing > 0 {
        return Err(format!(
            "strict mode: {still_failing} quarantined graph(s) still fail under the harness"
        ));
    }
    Ok(out)
}

/// Submits the graph to a running `dagsched-server` instead of
/// scheduling locally: one request per selected heuristic, responses
/// rendered in the local output format plus the answering tier and
/// cache provenance.
fn run_remote(opts: &CliOptions, addr: &str, text: &str) -> Result<String, String> {
    let submit_line = |line: &str| {
        let response =
            crate::server::submit(addr, line).map_err(|e| format!("remote {addr}: {e}"))?;
        crate::server::render_response(&response)
    };
    let mut out = String::new();
    // An empty input means a pure control query (--server-stats /
    // --server-metrics with no graph).
    if !opts.input.is_empty() {
        // Normalize STG input to the native text format locally so the
        // wire protocol carries exactly one graph grammar.
        let graph = match opts.stg_edge_weight {
            Some(w) => textio::write(&crate::dag::stg::parse(text, w).map_err(|e| e.to_string())?),
            None => text.to_string(),
        };
        for h in select_heuristics(&opts.heuristic)? {
            let line = crate::server::encode_schedule_request(
                &graph,
                h.name(),
                &opts.machine,
                opts.time_budget_ms,
                None,
            );
            out.push_str(&submit_line(&line)?);
        }
    }
    if opts.server_stats {
        out.push_str(&submit_line(&crate::server::encode_control_request(
            "stats", None,
        ))?);
    }
    if opts.server_metrics {
        out.push_str(&submit_line(&crate::server::encode_control_request(
            "metrics", None,
        ))?);
    }
    Ok(out)
}

/// Runs the tool against already-loaded graph text; returns the
/// rendered output.
pub fn run_on_text(opts: &CliOptions, text: &str) -> Result<String, String> {
    if let Some(path) = &opts.replay_quarantine {
        return run_quarantine_replay(opts, Path::new(path));
    }
    if let Some(addr) = &opts.remote {
        return run_remote(opts, addr, text);
    }
    let g: Dag = match opts.stg_edge_weight {
        Some(w) => crate::dag::stg::parse(text, w).map_err(|e| e.to_string())?,
        None => textio::parse(text).map_err(|e| e.to_string())?,
    };
    let machine: Arc<dyn Machine> = Arc::from(parse_machine(&opts.machine)?);
    let heuristics = select_heuristics(&opts.heuristic)?;
    // Any robustness flag selects the fault-isolated path (--strict
    // needs the harness to observe incidents before it can fail on
    // them); the harness always keeps the oracle gate on so everything
    // printed below is a valid schedule either way.
    let harness =
        (opts.validate || opts.strict || opts.time_budget_ms.is_some()).then(|| HarnessConfig {
            time_budget: opts.time_budget_ms.map(Duration::from_millis),
            validate: true,
        });
    let journal = match &opts.checkpoint_dir {
        Some(dir) => {
            // Key on the full machine spec ("ring:4", not "ring") so a
            // journal never replays across topologies or sizes.
            let key = fingerprint_machine_key(GraphFingerprint::of(&g).digest, &opts.machine);
            Some(open_cli_journal(opts, Path::new(dir), key)?)
        }
        None => None,
    };

    let mut out = String::new();
    if !opts.quiet {
        writeln!(
            out,
            "graph: {} tasks, {} edges, serial time {}, granularity {:.3}, machine {}",
            g.num_nodes(),
            g.num_edges(),
            g.serial_time(),
            gmetrics::granularity(&g),
            machine.name(),
        )
        .unwrap();
    }
    if opts.dot {
        out.push_str(&crate::dag::dot::to_dot(&g, "input"));
    }
    let sink = match &opts.trace_out {
        Some(path) => Some(
            TelemetrySink::to_path(std::path::Path::new(path))
                .map_err(|e| format!("cannot create {path}: {e}"))?,
        ),
        None => None,
    };
    let observe = sink.is_some() || opts.metrics;
    let mut chrome = opts.trace_chrome.then(obs::ChromeTrace::new);
    let mut summary = Summary::default();
    let mut incident_count = 0usize;
    // Heuristic makespans, kept for the `--exact` gap line.
    let mut ran: Vec<(&'static str, u64)> = Vec::new();
    for h in heuristics {
        let name = h.name();
        if let Some(journal) = &journal {
            if let Some(saved) = journal.replayed.get(name) {
                // Already journaled: print the stored metric and
                // incident lines byte-for-byte, skip the run (and its
                // Gantt/SVG/analysis output and telemetry).
                writeln!(
                    out,
                    "{:<7} parallel_time={} speedup={:.3} efficiency={:.3} procs={}",
                    name, saved.parallel_time, saved.speedup, saved.efficiency, saved.procs
                )
                .unwrap();
                for inc in &saved.incidents {
                    writeln!(out, "  incident: {inc}").unwrap();
                }
                incident_count += saved.incidents.len();
                ran.push((name, saved.parallel_time));
                continue;
            }
        }
        let scope = observe.then(obs::run_scope);
        let span = observe.then(|| obs::span!("run.schedule"));
        let (s, scheduled_by, incidents) = match harness {
            Some(config) => {
                let robust = RobustScheduler::new(Arc::from(h)).with_config(config);
                let r = robust.run(&g, &machine);
                (r.schedule, r.scheduled_by, r.incidents)
            }
            None => {
                let s = h.schedule(&g, machine.as_ref());
                let violations = validate::check(&g, machine.as_ref(), &s);
                if !violations.is_empty() {
                    return Err(format!(
                        "{name} produced an invalid schedule: {violations:?}"
                    ));
                }
                (s, name, Vec::new())
            }
        };
        drop(span);
        let m = metrics::measures(&g, &s);
        if let Some(scope) = scope {
            let record = RunRecord {
                graph: GraphMeta {
                    id: opts.input.clone(),
                    nodes: g.num_nodes() as u64,
                    edges: g.num_edges() as u64,
                    serial_time: Some(g.serial_time()),
                    granularity: Some(gmetrics::granularity(&g)),
                    ..GraphMeta::default()
                },
                heuristic: name.to_string(),
                scheduled_by: Some(scheduled_by.to_string()),
                ok: true,
                processors: Some(m.procs as u64),
                makespan: Some(m.parallel_time),
                speedup: m.speedup.is_finite().then_some(m.speedup),
                incidents: incidents
                    .iter()
                    .map(|inc| IncidentMeta {
                        heuristic: inc.heuristic.to_string(),
                        kind: inc.fault.kind().to_string(),
                        summary: inc.summary(),
                    })
                    .collect(),
                stats: scope.finish(),
            };
            if let Some(sink) = &sink {
                sink.emit(&record)
                    .map_err(|e| format!("telemetry write failed: {e}"))?;
            }
            if let Some(trace) = &mut chrome {
                trace.add_run(name, &opts.input, &record.stats);
            }
            summary.observe(&record);
        }
        writeln!(
            out,
            "{:<7} parallel_time={} speedup={:.3} efficiency={:.3} procs={}",
            name, m.parallel_time, m.speedup, m.efficiency, m.procs
        )
        .unwrap();
        for incident in &incidents {
            writeln!(out, "  incident: {}", incident.summary()).unwrap();
        }
        incident_count += incidents.len();
        ran.push((name, m.parallel_time));
        if let Some(journal) = &journal {
            let saved = SavedRun {
                parallel_time: m.parallel_time,
                speedup: m.speedup,
                efficiency: m.efficiency,
                procs: m.procs,
                incidents: incidents.iter().map(|inc| inc.summary()).collect(),
            };
            journal
                .writer
                .append(&cli_record_body(journal, name, &saved))
                .map_err(|e| format!("checkpoint write failed: {e}"))?;
        }
        if opts.analyze {
            let a = crate::sim::analysis::analyze(&g, machine.as_ref(), &s);
            writeln!(out, "  {a}").unwrap();
        }
        if !opts.quiet && opts.gantt_width > 0 {
            out.push_str(&gantt::render(&s, opts.gantt_width));
        }
        if opts.svg {
            out.push_str(&gantt::render_svg(&s));
        }
    }
    if opts.exact {
        out.push_str(&render_exact_anchor(
            &g,
            machine.as_ref(),
            opts.exact_budget,
            &ran,
        ));
    }
    if let Some(sink) = sink {
        // close(), not flush(): a failing final fsync must fail the
        // run, not vanish in the sink's Drop.
        sink.emit_summary(&summary)
            .and_then(|()| sink.close())
            .map_err(|e| format!("telemetry write failed: {e}"))?;
    }
    if let Some(trace) = chrome {
        let path = format!(
            "{}.chrome.json",
            opts.trace_out.as_deref().expect("validated at parse time")
        );
        std::fs::write(&path, trace.finish())
            .map_err(|e| format!("chrome trace write failed: {e}"))?;
    }
    if opts.metrics && !summary.is_empty() {
        out.push('\n');
        out.push_str(&summary.render());
    }
    if opts.strict && incident_count > 0 {
        return Err(format!(
            "strict mode: {incident_count} incident(s) contained \
             (rerun without --strict to accept the fallbacks)"
        ));
    }
    Ok(out)
}

/// `--exact`: the branch-and-bound anchor block appended after the
/// heuristic runs — the exact schedule's metrics, its proof status
/// (proven optimum vs `[lower bound, incumbent]` bracket), and each
/// ran heuristic's percent gap to the anchor.
fn render_exact_anchor(
    g: &Dag,
    machine: &dyn Machine,
    budget: Option<u64>,
    ran: &[(&'static str, u64)],
) -> String {
    use crate::exact::{solve, ExactConfig, ExactError};
    let cfg = ExactConfig {
        node_budget: Some(budget.unwrap_or(5_000_000)),
        ..ExactConfig::default()
    };
    let mut out = String::new();
    match solve(g, machine, &cfg) {
        Ok(r) => {
            let m = metrics::measures(g, &r.schedule);
            writeln!(
                out,
                "{:<7} parallel_time={} speedup={:.3} efficiency={:.3} procs={}",
                "EXACT", m.parallel_time, m.speedup, m.efficiency, m.procs
            )
            .unwrap();
            if r.proven {
                writeln!(out, "  proven optimal ({} search nodes)", r.nodes_explored).unwrap();
            } else {
                writeln!(
                    out,
                    "  not proven: optimum in [{}, {}]{} ({} search nodes)",
                    r.lower_bound,
                    r.makespan,
                    if r.cutoff {
                        ", budget exhausted"
                    } else {
                        ", machine processors not interchangeable"
                    },
                    r.nodes_explored
                )
                .unwrap();
            }
            if !ran.is_empty() {
                let anchor = r.makespan;
                write!(
                    out,
                    "  gap to {}:",
                    if r.proven { "optimum" } else { "incumbent" }
                )
                .unwrap();
                for (name, mk) in ran {
                    let gap = if anchor == 0 {
                        0.0
                    } else {
                        (*mk as f64 / anchor as f64 - 1.0).max(0.0) * 100.0
                    };
                    write!(out, " {name} {gap:.1}%").unwrap();
                }
                out.push('\n');
            }
        }
        Err(e @ ExactError::TooLarge { .. }) => {
            writeln!(out, "{:<7} skipped: {e}", "EXACT").unwrap();
        }
    }
    out
}

/// The usage string printed on `--help` or errors.
pub const USAGE: &str = "usage: dagsched [--heuristic NAME|all] [--machine uniform|clique|ring:N|mesh:RxC|hypercube:D|bounded:P|linkaware:FILE] [--gantt WIDTH] [--analyze] [--svg] [--dot] [--stg W] [--quiet] [--validate] [--time-budget MS] [--trace-out PATH] [--trace-format jsonl|chrome] [--metrics] [--checkpoint-dir DIR | --resume DIR] [--strict] [--replay-quarantine FILE] [--remote ADDR] [--server-stats] [--server-metrics] [--exact] [--exact-budget N] <graph.pdg | ->";

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
nodes 3
node 0 10
node 1 20
node 2 30
edge 0 1 5
edge 0 2 5
";

    fn opts(extra: &[&str]) -> CliOptions {
        let mut args: Vec<String> = extra.iter().map(|s| s.to_string()).collect();
        args.push("-".into());
        parse_args(&args).unwrap()
    }

    #[test]
    fn parse_defaults() {
        let o = opts(&[]);
        assert_eq!(o.heuristic, "all");
        assert_eq!(o.machine, "clique");
        assert_eq!(o.input, "-");
    }

    #[test]
    fn parse_flags() {
        let o = opts(&[
            "--heuristic",
            "dsc",
            "--machine",
            "MESH:2x3",
            "--quiet",
            "--dot",
            "--gantt",
            "0",
        ]);
        assert_eq!(o.heuristic, "DSC");
        assert_eq!(o.machine, "mesh:2x3");
        assert!(o.quiet && o.dot);
        assert_eq!(o.gantt_width, 0);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&[]).is_err()); // no input
        assert!(parse_args(&["--frobnicate".into(), "-".into()]).is_err());
        assert!(parse_args(&["a".into(), "b".into()]).is_err()); // two inputs
    }

    #[test]
    fn machine_parsing() {
        assert_eq!(parse_machine("clique").unwrap().name(), "clique");
        assert_eq!(parse_machine("ring:5").unwrap().max_procs(), Some(5));
        assert_eq!(parse_machine("mesh:2x3").unwrap().max_procs(), Some(6));
        assert_eq!(parse_machine("hypercube:3").unwrap().max_procs(), Some(8));
        assert_eq!(parse_machine("bounded:4").unwrap().max_procs(), Some(4));
        for bad in [
            "nope",
            "ring:0",
            "ring:x",
            "mesh:2",
            "mesh:0x3",
            "bounded:0",
            "hypercube:50",
        ] {
            assert!(parse_machine(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn heuristic_selection() {
        assert_eq!(select_heuristics("all").unwrap().len(), 11);
        assert_eq!(select_heuristics("CLANS").unwrap().len(), 1);
        assert!(select_heuristics("NOPE").is_err());
    }

    #[test]
    fn exact_is_selectable_by_name_but_never_part_of_all() {
        let exact = select_heuristics("EXACT").unwrap();
        assert_eq!(exact.len(), 1);
        assert_eq!(exact[0].name(), "EXACT");
        assert!(select_heuristics("all")
            .unwrap()
            .iter()
            .all(|h| h.name() != "EXACT"));
    }

    #[test]
    fn exact_flag_appends_the_anchor_block() {
        let o = opts(&["--quiet", "--exact"]);
        let out = run_on_text(&o, SAMPLE).unwrap();
        assert!(out.contains("EXACT"), "{out}");
        assert!(out.contains("proven optimal"), "{out}");
        assert!(out.contains("gap to optimum:"), "{out}");
        // Every gap is against a certified optimum, so none may be
        // negative (the formatter floors at 0.0%, so just sanity-check
        // the heuristics appear on the gap line).
        for h in ["CLANS", "SERIAL"] {
            assert!(out.contains(&format!(" {h} ")), "missing {h} gap: {out}");
        }
    }

    #[test]
    fn exact_budget_implies_exact_and_validates() {
        let o = opts(&["--exact-budget", "1000"]);
        assert!(o.exact);
        assert_eq!(o.exact_budget, Some(1000));
        let bad: Vec<String> = ["--exact-budget", "0", "-"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&bad).is_err());
        let conflict: Vec<String> = ["--exact", "--remote", "h:1", "-"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&conflict).is_err());
    }

    #[test]
    fn runs_all_heuristics_on_sample() {
        let o = opts(&["--quiet"]);
        let out = run_on_text(&o, SAMPLE).unwrap();
        for h in ["CLANS", "DSC", "MCP", "MH", "HU", "SARKAR", "SERIAL"] {
            assert!(out.contains(h), "missing {h} in output");
        }
        assert!(out.contains("parallel_time="));
    }

    #[test]
    fn runs_single_heuristic_with_gantt_and_dot() {
        let mut o = opts(&["--heuristic", "clans", "--dot"]);
        o.gantt_width = 30;
        let out = run_on_text(&o, SAMPLE).unwrap();
        assert!(out.contains("digraph input"));
        assert!(out.contains("CLANS"));
        assert!(out.contains("P0"));
        assert!(!out.contains("DSC "));
    }

    #[test]
    fn analyze_and_svg_flags() {
        let o = opts(&["--heuristic", "clans", "--analyze", "--svg", "--gantt", "0"]);
        let out = run_on_text(&o, SAMPLE).unwrap();
        assert!(out.contains("zeroed"));
        assert!(out.contains("<svg"));
        assert!(out.contains("</svg>"));
    }

    #[test]
    fn stg_input_mode() {
        let mut o = opts(&["--quiet"]);
        o.stg_edge_weight = Some(4);
        let stg = "3\n0 10 0\n1 20 1 0\n2 30 1 0\n";
        let out = run_on_text(&o, stg).unwrap();
        assert!(out.contains("CLANS"));
        // The same text is invalid in the native format.
        o.stg_edge_weight = None;
        assert!(run_on_text(&o, stg).is_err());
    }

    #[test]
    fn bad_graph_is_reported() {
        let o = opts(&["--quiet"]);
        let err = run_on_text(&o, "nodes x").unwrap_err();
        assert!(err.contains("invalid node count"));
    }

    #[test]
    fn robustness_flags_parse() {
        let o = opts(&["--validate", "--time-budget", "250"]);
        assert!(o.validate);
        assert_eq!(o.time_budget_ms, Some(250));
        assert!(parse_args(&["--time-budget".into(), "0".into(), "-".into()]).is_err());
        assert!(parse_args(&["--time-budget".into(), "x".into(), "-".into()]).is_err());
    }

    #[test]
    fn harnessed_run_reports_clean_schedules() {
        let o = opts(&["--quiet", "--validate", "--time-budget", "60000"]);
        let out = run_on_text(&o, SAMPLE).unwrap();
        for h in ["CLANS", "DSC", "MCP", "MH", "HU"] {
            assert!(out.contains(h), "missing {h}");
        }
        // Healthy heuristics on a 3-task graph raise no incidents.
        assert!(!out.contains("incident:"));
    }

    #[test]
    fn telemetry_flags_parse() {
        let o = opts(&["--trace-out", "trace.jsonl", "--metrics"]);
        assert_eq!(o.trace_out.as_deref(), Some("trace.jsonl"));
        assert!(o.metrics);
        assert!(!o.trace_chrome);
        assert!(parse_args(&["--trace-out".into()]).is_err());
        let o = opts(&["--trace-out", "t.jsonl", "--trace-format", "chrome"]);
        assert!(o.trace_chrome);
        let o = opts(&["--trace-out", "t.jsonl", "--trace-format", "jsonl"]);
        assert!(!o.trace_chrome);
        // chrome output rides on the JSONL path; it needs --trace-out.
        assert!(parse_args(&["--trace-format".into(), "chrome".into(), "-".into()]).is_err());
        assert!(parse_args(&[
            "--trace-out".into(),
            "t".into(),
            "--trace-format".into(),
            "svg".into(),
            "-".into(),
        ])
        .is_err());
    }

    #[test]
    fn server_query_flags_parse() {
        // Pure control queries need --remote but no input graph.
        let o = parse_args(&[
            "--remote".into(),
            "127.0.0.1:1".into(),
            "--server-stats".into(),
        ])
        .unwrap();
        assert!(o.server_stats && !o.server_metrics);
        assert_eq!(o.input, "");
        let o = parse_args(&[
            "--remote".into(),
            "127.0.0.1:1".into(),
            "--server-metrics".into(),
            "-".into(),
        ])
        .unwrap();
        assert!(o.server_metrics);
        assert_eq!(o.input, "-");
        assert!(parse_args(&["--server-stats".into(), "-".into()]).is_err());
        assert!(parse_args(&["--server-metrics".into(), "-".into()]).is_err());
    }

    #[test]
    fn chrome_trace_export_writes_a_perfetto_loadable_file() {
        let base =
            std::env::temp_dir().join(format!("dagsched-cli-chrome-{}.jsonl", std::process::id()));
        let mut o = opts(&["--quiet", "--heuristic", "dsc"]);
        o.trace_out = Some(base.display().to_string());
        o.trace_chrome = true;
        run_on_text(&o, SAMPLE).unwrap();
        let chrome_path = format!("{}.chrome.json", base.display());
        let text = std::fs::read_to_string(&chrome_path).unwrap();
        std::fs::remove_file(&base).ok();
        std::fs::remove_file(&chrome_path).ok();
        let j = obs::Json::parse(&text).expect("chrome export is valid JSON");
        assert_eq!(
            j.get("displayTimeUnit").unwrap().as_str(),
            Some("ms"),
            "{text}"
        );
        let events = j.get("traceEvents").unwrap().as_arr().unwrap();
        if cfg!(feature = "obs") {
            // The run.schedule root span nests the heuristic's phases.
            assert!(
                events
                    .iter()
                    .any(|e| { e.get("name").and_then(obs::Json::as_str) == Some("run.schedule") }),
                "{text}"
            );
        }
    }

    #[test]
    fn metrics_flag_appends_the_summary() {
        let o = opts(&["--quiet", "--heuristic", "clans", "--metrics"]);
        let out = run_on_text(&o, SAMPLE).unwrap();
        assert!(out.contains("### Instrumentation summary"));
        assert!(out.contains("| CLANS |"));
        // Without the flag the section is absent.
        let plain = run_on_text(&opts(&["--quiet", "--heuristic", "clans"]), SAMPLE).unwrap();
        assert!(!plain.contains("Instrumentation summary"));
    }

    #[test]
    fn trace_out_writes_one_record_per_heuristic() {
        let path =
            std::env::temp_dir().join(format!("dagsched-cli-trace-{}.jsonl", std::process::id()));
        let mut o = opts(&["--quiet", "--validate"]);
        o.trace_out = Some(path.display().to_string());
        run_on_text(&o, SAMPLE).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut runs = 0;
        let mut summaries = 0;
        for line in text.lines() {
            let j = obs::Json::parse(line).expect("every line is valid JSON");
            match j.get("schema").and_then(obs::Json::as_str) {
                Some(s) if s == obs::RUN_SCHEMA => {
                    runs += 1;
                    let graph = j.get("graph").expect("run records carry graph meta");
                    assert_eq!(graph.get("id").unwrap().as_str(), Some("-"));
                    assert_eq!(graph.get("nodes").unwrap().as_u64(), Some(3));
                }
                Some(s) if s == obs::SUMMARY_SCHEMA => summaries += 1,
                other => panic!("unexpected schema {other:?}"),
            }
        }
        let expected = select_heuristics("all").unwrap().len();
        assert_eq!(runs, expected, "one run record per heuristic");
        assert_eq!(summaries, expected, "one summary line per heuristic");
    }

    #[test]
    fn checkpoint_flags_parse() {
        let o = opts(&["--checkpoint-dir", "ckpt", "--strict"]);
        assert_eq!(o.checkpoint_dir.as_deref(), Some("ckpt"));
        assert!(o.strict && !o.resume);
        let o = opts(&["--resume", "ckpt"]);
        assert_eq!(o.checkpoint_dir.as_deref(), Some("ckpt"));
        assert!(o.resume);
        // Quarantine replay needs no input graph...
        let o = parse_args(&["--replay-quarantine".into(), "q.jsonl".into()]).unwrap();
        assert_eq!(o.replay_quarantine.as_deref(), Some("q.jsonl"));
        // ...and rejects one, as well as a checkpoint dir.
        assert!(parse_args(&["--replay-quarantine".into(), "q".into(), "-".into()]).is_err());
        assert!(parse_args(&[
            "--replay-quarantine".into(),
            "q".into(),
            "--checkpoint-dir".into(),
            "d".into(),
        ])
        .is_err());
        // Journals and telemetry traces don't mix.
        assert!(parse_args(&[
            "--checkpoint-dir".into(),
            "d".into(),
            "--trace-out".into(),
            "t".into(),
            "-".into(),
        ])
        .is_err());
    }

    #[test]
    fn strict_passes_healthy_runs() {
        let o = opts(&["--quiet", "--strict"]);
        let out = run_on_text(&o, SAMPLE).unwrap();
        assert!(out.contains("CLANS"));
        assert!(!out.contains("incident:"));
    }

    #[test]
    fn checkpointed_run_resumes_byte_identical() {
        let dir = std::env::temp_dir().join(format!("dagsched-cli-ckpt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut o = opts(&["--quiet", "--validate"]);
        o.checkpoint_dir = Some(dir.display().to_string());
        let fresh = run_on_text(&o, SAMPLE).unwrap();
        // A second fresh run refuses to clobber the journal...
        let err = run_on_text(&o, SAMPLE).unwrap_err();
        assert!(err.contains("--resume"), "{err}");
        // ...while --resume replays every journaled heuristic and
        // prints the same metric lines without re-running anything.
        o.resume = true;
        let resumed = run_on_text(&o, SAMPLE).unwrap();
        assert_eq!(fresh, resumed);
        // Tear the journal tail mid-record: the torn heuristic
        // re-runs, the rest replay, and the output is still
        // byte-identical (the journal is repaired in place).
        let path = dir.join(super::JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text.as_bytes()[..text.len() - 9]).unwrap();
        let repaired = run_on_text(&o, SAMPLE).unwrap();
        assert_eq!(fresh, repaired);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        // A journal from another machine is rejected.
        o.machine = "ring:4".into();
        let err = run_on_text(&o, SAMPLE).unwrap_err();
        assert!(err.contains("machine"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A scheduler that always panics, for quarantine fixtures.
    struct Bomb;
    impl crate::core::Scheduler for Bomb {
        fn name(&self) -> &'static str {
            "BOMB"
        }
        fn schedule(&self, _g: &Dag, _machine: &dyn Machine) -> crate::sim::Schedule {
            panic!("boom");
        }
    }

    #[test]
    fn quarantine_replay_end_to_end() {
        use crate::experiments::{run_corpus_checkpointed, CorpusSpec, SweepConfig};
        use crate::harness::RetryPolicy;
        let dir = std::env::temp_dir().join(format!("dagsched-cli-quar-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // Quarantine every graph of a tiny corpus by sweeping it with
        // a trusted (unharnessed) panicking scheduler.
        let spec = CorpusSpec {
            graphs_per_set: 1,
            nodes: 12..=16,
            ..CorpusSpec::default()
        };
        let cfg = SweepConfig {
            harness: None,
            retry: RetryPolicy::none(),
            strict: false,
            ..SweepConfig::default()
        };
        let outcome =
            run_corpus_checkpointed(&spec, vec![Box::new(Bomb)], &cfg, &dir, false).unwrap();
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.quarantine.len(), spec.total_graphs());
        // Replaying the quarantine with a healthy heuristic completes
        // every graph; --strict is satisfied.
        let o = CliOptions {
            heuristic: "HU".into(),
            strict: true,
            replay_quarantine: Some(
                dir.join(crate::experiments::checkpoint::QUARANTINE_FILE)
                    .display()
                    .to_string(),
            ),
            input: String::new(),
            ..CliOptions::default()
        };
        let out = run_on_text(&o, "").unwrap();
        assert!(out.contains(&format!(
            "replaying {} quarantined graph(s)",
            spec.total_graphs()
        )));
        assert!(out.contains("quarantined coarse/"), "{out}");
        assert!(out.contains("HU "), "{out}");
        assert!(!out.contains("still failing"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bounded_machine_end_to_end() {
        let o = CliOptions {
            heuristic: "MH".into(),
            machine: "bounded:1".into(),
            quiet: true,
            ..opts(&[])
        };
        let out = run_on_text(&o, SAMPLE).unwrap();
        assert!(out.contains("procs=1"));
    }
}
