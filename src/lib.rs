//! # dagsched — umbrella crate
//!
//! Re-exports the whole workspace behind one dependency, mirroring the
//! layering of the reproduction of Khan, McCreary & Jones,
//! *A Comparison of Multiprocessor Scheduling Heuristics* (ICPP 1994):
//!
//! * [`dag`] — the weighted-DAG (PDG) substrate;
//! * [`clans`] — clan (modular) decomposition into parse trees;
//! * [`sim`] — machine model, schedules, validation, metrics,
//!   discrete-event simulation;
//! * [`gen`] — random PDG generation and classification;
//! * [`par`] — the work-stealing parallel-map substrate;
//! * [`obs`] — instrumentation: spans, metrics, and JSONL run
//!   telemetry (compiled out without the default `obs` feature);
//! * [`core`] — the five heuristics (CLANS, DSC, MCP, MH, HU) plus
//!   extension schedulers behind the [`core::Scheduler`] trait;
//! * [`exact`] — exact branch-and-bound makespan optimization for
//!   small graphs: proven optima (or bracketing lower bounds) that
//!   anchor the heuristic comparison;
//! * [`harness`] — fault isolation: panic containment, time budgets,
//!   oracle-gated fallback chains, incident records;
//! * [`experiments`] — the 2100-graph corpus and regeneration of
//!   every table and figure of the paper.
//!
//! See `examples/quickstart.rs` for a guided tour.

pub mod cli;

pub use dagsched_clans as clans;
pub use dagsched_core as core;
pub use dagsched_dag as dag;
pub use dagsched_exact as exact;
pub use dagsched_experiments as experiments;
pub use dagsched_gen as gen;
pub use dagsched_harness as harness;
pub use dagsched_obs as obs;
pub use dagsched_par as par;
pub use dagsched_server as server;
pub use dagsched_sim as sim;

// The error types a caller handles, re-exported at the top level.
pub use dagsched_dag::DagError;
pub use dagsched_gen::GenError;
// The harness vocabulary a caller consumes directly: the wrapper, its
// policy, and everything a run reports back.
pub use dagsched_harness::{
    Fault, GraphFingerprint, HarnessConfig, Incident, RetryPolicy, RobustScheduler, RunOutcome,
    SERIAL_PLACEMENT,
};
// The corpus-level robustness report types, and the crash-safe sweep
// surface (journaled checkpoints, resume, quarantine).
pub use dagsched_experiments::{
    CheckpointError, FaultTally, QuarantineRecord, RobustnessStats, SweepConfig, SweepOutcome,
};
// The telemetry surface: JSONL records and the sink they stream to.
pub use dagsched_obs::{RunRecord, TelemetrySink};
