//! `dagsched` — schedule a PDG from the plain-text format with any
//! heuristic in the workspace. See `dagsched::cli` for the format and
//! options.

use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match dagsched::cli::parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}");
            }
            eprintln!("{}", dagsched::cli::USAGE);
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    // Quarantine replay regenerates its graphs from the journal, and
    // pure server queries (--server-stats/--server-metrics with no
    // graph) take none — don't block on stdin waiting for one.
    let text = if opts.replay_quarantine.is_some() || opts.input.is_empty() {
        String::new()
    } else if opts.input == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("error: failed to read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&opts.input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", opts.input);
                return ExitCode::FAILURE;
            }
        }
    };
    match dagsched::cli::run_on_text(&opts, &text) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
